// Package engine implements the discrete-event simulation core of HolDCSim.
//
// The engine maintains a virtual clock and a priority queue of pending
// events. Events are plain closures scheduled for a point in virtual time;
// ties are broken by scheduling order (a monotonically increasing sequence
// number), which makes every run deterministic for a fixed seed.
//
// The engine is single-threaded by design: data center simulations at this
// abstraction level are dominated by event ordering, and a lock-free
// sequential loop is both faster and exactly reproducible. (This mirrors
// the paper's description of HolDCSim as a light-weight event-driven
// platform able to scale past 20K servers.)
package engine

import (
	"container/heap"
	"fmt"

	"holdcsim/internal/simtime"
)

// Event is a scheduled closure. Obtain events only through Engine.Schedule
// or Engine.After; the returned *Event may be used to Cancel it.
type Event struct {
	at     simtime.Time
	seq    uint64
	fn     func()
	index  int // position in the heap, -1 when popped or canceled
	cancel bool
}

// At reports the virtual time the event fires at.
func (e *Event) At() simtime.Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.cancel }

// Pending reports whether the event is still queued and not canceled.
func (e *Event) Pending() bool { return e != nil && !e.cancel && e.index >= 0 }

// Engine is a discrete-event simulator. The zero value is not usable;
// call New.
type Engine struct {
	now     simtime.Time
	queue   eventHeap
	seq     uint64
	stopped bool

	// Dispatched counts events executed since New; exposed for the
	// scalability benchmarks (Table I).
	Dispatched uint64
}

// New returns an empty engine with the clock at the simulation epoch.
func New() *Engine {
	e := &Engine{}
	e.queue = make(eventHeap, 0, 1024)
	return e
}

// Now reports the current virtual time.
func (e *Engine) Now() simtime.Time { return e.now }

// Len reports the number of queued (possibly canceled) events.
func (e *Engine) Len() int { return len(e.queue) }

// Schedule queues fn to run at absolute virtual time at.
// Scheduling in the past panics: it always indicates a model bug.
func (e *Engine) Schedule(at simtime.Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("engine: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("engine: schedule with nil func")
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After queues fn to run d from now. Negative d panics.
func (e *Engine) After(d simtime.Time, fn func()) *Event {
	return e.Schedule(e.now+d, fn)
}

// Cancel removes ev from the queue if it has not fired. It is safe to call
// with nil or with an already-fired event.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancel || ev.index < 0 {
		return
	}
	ev.cancel = true
	heap.Remove(&e.queue, ev.index)
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports false when the queue is empty or the engine
// has been stopped.
func (e *Engine) Step() bool {
	if e.stopped {
		return false
	}
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		e.Dispatched++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= end, then advances the clock
// to end (even if the queue still holds later events). It stops early if
// Stop is called or the queue drains.
func (e *Engine) RunUntil(end simtime.Time) {
	for !e.stopped {
		if len(e.queue) == 0 {
			break
		}
		if next := e.peek(); next == nil || next.at > end {
			break
		}
		e.Step()
	}
	if e.now < end {
		e.now = end
	}
}

// Stop halts Run/RunUntil after the current event returns. Pending events
// stay queued; a subsequent Run resumes.
func (e *Engine) Stop() { e.stopped = true }

// Resume clears a previous Stop.
func (e *Engine) Resume() { e.stopped = false }

func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if ev.cancel {
			heap.Pop(&e.queue)
			continue
		}
		return ev
	}
	return nil
}

// NextEventTime reports the timestamp of the earliest pending event and
// whether one exists.
func (e *Engine) NextEventTime() (simtime.Time, bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// eventHeap orders events by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
