package engine

import (
	"testing"

	"holdcsim/internal/simtime"
)

func BenchmarkScheduleAndRun(b *testing.B) {
	e := New()
	count := 0
	var next func()
	next = func() {
		count++
		if count < b.N {
			e.After(simtime.Microsecond, next)
		}
	}
	b.ResetTimer()
	e.After(simtime.Microsecond, next)
	e.Run()
}

func BenchmarkHeapChurn(b *testing.B) {
	// Many pending timers with random-ish deadlines: the delay-timer
	// workload shape (arm, cancel, re-arm).
	e := New()
	const pending = 4096
	evs := make([]Handle, pending)
	for i := range evs {
		evs[i] = e.Schedule(simtime.Time(i+1)*simtime.Second, func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i % pending
		e.Cancel(evs[idx])
		evs[idx] = e.Schedule(e.Now()+simtime.Time(idx+1)*simtime.Second, func() {})
	}
}

func BenchmarkTimerReset(b *testing.B) {
	e := New()
	tm := NewTimer(e, func() {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Reset(simtime.Second)
	}
}
