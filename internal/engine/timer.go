package engine

import "holdcsim/internal/simtime"

// Timer is a restartable one-shot timer on the virtual clock, used for
// delay timers (Sec. IV-B of the paper), LPI idle thresholds, and similar
// "fire unless something happens first" policies.
//
// A Timer is bound to one Engine and one callback; Reset re-arms it,
// canceling any pending expiry.
type Timer struct {
	eng *Engine
	fn  func()
	ev  *Event
}

// NewTimer returns an unarmed timer that will invoke fn on expiry.
func NewTimer(eng *Engine, fn func()) *Timer {
	if fn == nil {
		panic("engine: NewTimer with nil func")
	}
	return &Timer{eng: eng, fn: fn}
}

// Reset arms the timer to fire d from now, canceling any pending expiry.
// A zero d fires at the current time (still via the event queue, preserving
// deterministic ordering).
func (t *Timer) Reset(d simtime.Time) {
	t.Stop()
	t.ev = t.eng.After(d, func() {
		t.ev = nil
		t.fn()
	})
}

// Stop disarms the timer. It reports whether a pending expiry was canceled.
func (t *Timer) Stop() bool {
	if t.ev != nil && t.ev.Pending() {
		t.eng.Cancel(t.ev)
		t.ev = nil
		return true
	}
	t.ev = nil
	return false
}

// Armed reports whether the timer has a pending expiry.
func (t *Timer) Armed() bool { return t.ev != nil && t.ev.Pending() }

// Deadline reports the pending expiry time; valid only when Armed.
func (t *Timer) Deadline() simtime.Time {
	if !t.Armed() {
		return 0
	}
	return t.ev.At()
}
