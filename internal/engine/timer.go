package engine

import "holdcsim/internal/simtime"

// Timer is a restartable one-shot timer on the virtual clock, used for
// delay timers (Sec. IV-B of the paper), LPI idle thresholds, and similar
// "fire unless something happens first" policies.
//
// A Timer is bound to one Engine and one callback; Reset re-arms it,
// canceling any pending expiry. The expiry closure is created once at
// construction and the queue entry comes from the engine's event pool, so
// the arm/cancel/re-arm churn these policies generate allocates nothing.
type Timer struct {
	eng  *Engine
	fn   func()
	fire func() // cached wrapper scheduled on every Reset
	h    Handle
}

// NewTimer returns an unarmed timer that will invoke fn on expiry.
func NewTimer(eng *Engine, fn func()) *Timer {
	if fn == nil {
		panic("engine: NewTimer with nil func")
	}
	t := &Timer{eng: eng, fn: fn}
	t.fire = func() {
		t.h = Handle{}
		t.fn() //simlint:allow hookguard fn is mandatory: NewTimer panics on nil
	}
	return t
}

// Reset arms the timer to fire d from now, canceling any pending expiry.
// A zero d fires at the current time (still via the event queue, preserving
// deterministic ordering).
func (t *Timer) Reset(d simtime.Time) {
	t.eng.Cancel(t.h)
	t.h = t.eng.After(d, t.fire)
}

// Stop disarms the timer. It reports whether a pending expiry was canceled.
func (t *Timer) Stop() bool {
	armed := t.h.Pending()
	t.eng.Cancel(t.h)
	t.h = Handle{}
	return armed
}

// Armed reports whether the timer has a pending expiry.
func (t *Timer) Armed() bool { return t.h.Pending() }

// Deadline reports the pending expiry time; valid only when Armed.
func (t *Timer) Deadline() simtime.Time {
	if !t.Armed() {
		return 0
	}
	return t.h.At()
}
