// Package trace provides the trace-driven workload substrate of HolDCSim.
//
// The paper drives its case studies with two public traces we cannot
// redistribute or access offline:
//
//   - the Wikipedia request trace [59] (Secs. IV-A, IV-C, V-B), and
//   - an NLANR HTTP trace [2] (Sec. V-A).
//
// Per the reproduction ground rules, this package synthesizes traces with
// the same *behavioral* content: the Wikipedia generator produces the
// diurnal rate swings that drive provisioning and power-state decisions;
// the NLANR generator produces heavy-tailed ON/OFF burstiness that
// exercises C-state transitions during validation. Both are deterministic
// per seed. Plain-text trace files (one arrival timestamp per line, in
// seconds) can also be loaded and saved, mirroring the paper's modified
// httperf replay flow.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Trace is a sequence of arrival timestamps in seconds, nondecreasing.
type Trace struct {
	// Times holds arrival instants in seconds from trace start.
	Times []float64
}

// Len reports the number of arrivals.
func (t *Trace) Len() int { return len(t.Times) }

// Duration reports the time of the last arrival (0 for an empty trace).
func (t *Trace) Duration() float64 {
	if len(t.Times) == 0 {
		return 0
	}
	return t.Times[len(t.Times)-1]
}

// MeanRate reports arrivals per second over the trace duration.
func (t *Trace) MeanRate() float64 {
	d := t.Duration()
	if d <= 0 {
		return 0
	}
	return float64(len(t.Times)) / d
}

// Validate checks that timestamps are finite, nonnegative and
// nondecreasing. (NaN compares false against everything, so without an
// explicit finiteness check a NaN timestamp would slip through the
// ordering tests and corrupt replay arithmetic downstream.)
func (t *Trace) Validate() error {
	prev := 0.0
	for i, x := range t.Times {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("trace: non-finite timestamp %g at index %d", x, i)
		}
		if x < 0 {
			return fmt.Errorf("trace: negative timestamp %g at index %d", x, i)
		}
		if x < prev {
			return fmt.Errorf("trace: timestamps decrease at index %d (%g < %g)", i, x, prev)
		}
		prev = x
	}
	return nil
}

// Scale multiplies every timestamp by f (finite, > 0), stretching
// (f > 1) or compressing (f < 1) the trace to retune its average load.
func (t *Trace) Scale(f float64) {
	if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		panic("trace: scale factor must be finite and positive")
	}
	for i := range t.Times {
		t.Times[i] *= f
	}
}

// Clip returns a new Trace containing arrivals in [from, to), rebased so
// the window starts at 0. An empty or inverted window yields an empty
// trace. Non-finite bounds are rejected: NaN compares false against
// every timestamp, so sort.SearchFloat64s would return an arbitrary
// window, and a NaN from would poison every rebased timestamp.
func (t *Trace) Clip(from, to float64) (*Trace, error) {
	if math.IsNaN(from) || math.IsInf(from, 0) || math.IsNaN(to) || math.IsInf(to, 0) {
		return nil, fmt.Errorf("trace: non-finite clip window [%g, %g)", from, to)
	}
	lo := sort.SearchFloat64s(t.Times, from)
	hi := sort.SearchFloat64s(t.Times, to)
	if hi < lo {
		hi = lo
	}
	out := make([]float64, hi-lo)
	for i, x := range t.Times[lo:hi] {
		out[i] = x - from
	}
	return &Trace{Times: out}, nil
}

// MaxRateBins caps the histogram RatePerSecond will allocate (2^22
// one-second bins ≈ 48 simulated days — far beyond any replayed
// campaign). The cap exists because traces now arrive from user files:
// a single far-future timestamp (1e12) would otherwise demand a
// terabyte-scale allocation, and int(x) on a value beyond the int range
// is undefined-width overflow.
const MaxRateBins = 1 << 22

// RatePerSecond buckets arrivals into 1-second bins and returns the
// per-bin counts — the load signal the provisioning case study monitors.
// The trace is validated first (finite, nonnegative, nondecreasing) and
// the bin count is capped at MaxRateBins; longer traces should be
// Clipped to the window of interest.
func (t *Trace) RatePerSecond() ([]int, error) {
	if len(t.Times) == 0 {
		return nil, nil
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	d := t.Duration()
	if d >= MaxRateBins {
		return nil, fmt.Errorf("trace: duration %gs exceeds the %d-bin histogram cap; Clip the window first", d, MaxRateBins)
	}
	n := int(d) + 1
	bins := make([]int, n)
	for _, x := range t.Times {
		idx := int(x)
		if idx >= n {
			idx = n - 1
		}
		bins[idx]++
	}
	return bins, nil
}

// Write emits the trace as one timestamp per line with 6-digit precision.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, x := range t.Times {
		if _, err := fmt.Fprintf(bw, "%.6f\n", x); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DefaultMaxArrivals bounds how many arrivals Read accepts (40 MB of
// timestamps — generously above the paper's replayed traces) so a
// pathological or hostile input file cannot exhaust memory.
const DefaultMaxArrivals = 5_000_000

// Read parses a trace from one-timestamp-per-line text. Blank lines and
// lines starting with '#' are skipped. The result is validated and
// capped at DefaultMaxArrivals (use ReadCapped to choose the bound).
func Read(r io.Reader) (*Trace, error) {
	return ReadCapped(r, DefaultMaxArrivals)
}

// ReadCapped is Read with an explicit arrival-count bound: an input
// with more than max timestamps errors instead of growing without
// limit. max <= 0 means DefaultMaxArrivals.
func ReadCapped(r io.Reader, max int) (*Trace, error) {
	if max <= 0 {
		max = DefaultMaxArrivals
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var times []float64
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if len(times) >= max {
			return nil, fmt.Errorf("trace: line %d: more than %d arrivals", line, max)
		}
		times = append(times, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t := &Trace{Times: times}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
