package trace

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"holdcsim/internal/rng"
)

func TestTraceBasics(t *testing.T) {
	tr := &Trace{Times: []float64{0.5, 1.0, 2.5, 9.5}}
	if tr.Len() != 4 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Duration() != 9.5 {
		t.Errorf("Duration = %v", tr.Duration())
	}
	if math.Abs(tr.MeanRate()-4/9.5) > 1e-12 {
		t.Errorf("MeanRate = %v", tr.MeanRate())
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := &Trace{}
	bins, err := tr.RatePerSecond()
	if err != nil {
		t.Fatalf("RatePerSecond: %v", err)
	}
	if tr.Duration() != 0 || tr.MeanRate() != 0 || bins != nil {
		t.Error("empty trace should report zeros")
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	if err := (&Trace{Times: []float64{-1}}).Validate(); err == nil {
		t.Error("negative timestamp accepted")
	}
	if err := (&Trace{Times: []float64{2, 1}}).Validate(); err == nil {
		t.Error("decreasing timestamps accepted")
	}
}

func TestScale(t *testing.T) {
	tr := &Trace{Times: []float64{1, 2, 4}}
	tr.Scale(0.5)
	want := []float64{0.5, 1, 2}
	for i, x := range tr.Times {
		if x != want[i] {
			t.Errorf("Times[%d] = %v", i, x)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Scale(0) did not panic")
		}
	}()
	tr.Scale(0)
}

func TestClip(t *testing.T) {
	tr := &Trace{Times: []float64{0, 1, 2, 3, 4, 5}}
	c, err := tr.Clip(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 2}
	if len(c.Times) != 3 {
		t.Fatalf("Clip len = %d", len(c.Times))
	}
	for i, x := range c.Times {
		if x != want[i] {
			t.Errorf("Clip[%d] = %v", i, x)
		}
	}
}

func TestRatePerSecond(t *testing.T) {
	tr := &Trace{Times: []float64{0.1, 0.9, 1.5, 3.2, 3.8}}
	bins, err := tr.RatePerSecond()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1, 0, 2}
	if len(bins) != 4 {
		t.Fatalf("bins = %v", bins)
	}
	for i, b := range bins {
		if b != want[i] {
			t.Errorf("bin %d = %d, want %d", i, b, want[i])
		}
	}
}

// TestRatePerSecondGuards is the regression test for the OOM/overflow
// bug: a loaded trace with one far-future timestamp (1e12 seconds) used
// to allocate int(1e12)+1 bins — a multi-terabyte request — and int(x)
// beyond the int range is undefined-width overflow. Both now error.
func TestRatePerSecondGuards(t *testing.T) {
	farFuture := &Trace{Times: []float64{0.5, 1e12}}
	if _, err := farFuture.RatePerSecond(); err == nil {
		t.Error("far-future timestamp did not error (would have allocated ~1e12 bins)")
	}
	beyondInt := &Trace{Times: []float64{1e300}}
	if _, err := beyondInt.RatePerSecond(); err == nil {
		t.Error("timestamp beyond int range did not error")
	}
	// Invalid traces (hand-built, never passed Validate) error instead
	// of indexing negative bins.
	negative := &Trace{Times: []float64{-3, 1}}
	if _, err := negative.RatePerSecond(); err == nil {
		t.Error("negative timestamp did not error")
	}
	nan := &Trace{Times: []float64{math.NaN()}}
	if _, err := nan.RatePerSecond(); err == nil {
		t.Error("NaN timestamp did not error")
	}
	// The cap boundary: just under MaxRateBins works, at the cap errors.
	ok := &Trace{Times: []float64{float64(MaxRateBins) - 1}}
	if bins, err := ok.RatePerSecond(); err != nil || len(bins) != MaxRateBins {
		t.Errorf("duration just under cap: bins=%d err=%v", len(bins), err)
	}
	at := &Trace{Times: []float64{float64(MaxRateBins)}}
	if _, err := at.RatePerSecond(); err == nil {
		t.Error("duration at the cap did not error")
	}
}

// TestReadCapped: the file-loading path refuses inputs beyond the
// arrival cap instead of growing without bound.
func TestReadCapped(t *testing.T) {
	if _, err := ReadCapped(strings.NewReader("1\n2\n3\n"), 2); err == nil {
		t.Error("3 arrivals accepted under a cap of 2")
	}
	tr, err := ReadCapped(strings.NewReader("1\n2\n"), 2)
	if err != nil || tr.Len() != 2 {
		t.Errorf("cap-sized input rejected: %v", err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	tr := &Trace{Times: []float64{0.25, 1.5, 3.75}}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Fatalf("round trip len = %d", back.Len())
	}
	for i := range tr.Times {
		if math.Abs(back.Times[i]-tr.Times[i]) > 1e-6 {
			t.Errorf("round trip [%d]: %v vs %v", i, back.Times[i], tr.Times[i])
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n1.0\n # another\n2.0\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("abc\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(strings.NewReader("2.0\n1.0\n")); err == nil {
		t.Error("unsorted trace accepted")
	}
}

func TestSyntheticWikipediaShape(t *testing.T) {
	cfg := DefaultWikipediaConfig(2000, 50)
	r := rng.New(42)
	tr := SyntheticWikipedia(cfg, r)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mean rate should be near the configured mean.
	if rate := tr.MeanRate(); math.Abs(rate-50)/50 > 0.15 {
		t.Errorf("mean rate = %v, want ~50", rate)
	}
	// The diurnal swing must be visible: smoothed max/min rate ratio > 1.3.
	bins, err := tr.RatePerSecond()
	if err != nil {
		t.Fatal(err)
	}
	window := 50
	var smoothed []float64
	for i := 0; i+window <= len(bins); i += window {
		sum := 0
		for _, b := range bins[i : i+window] {
			sum += b
		}
		smoothed = append(smoothed, float64(sum)/float64(window))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range smoothed {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi/math.Max(lo, 1e-9) < 1.3 {
		t.Errorf("diurnal swing too small: min=%v max=%v", lo, hi)
	}
}

func TestSyntheticWikipediaDeterministic(t *testing.T) {
	cfg := DefaultWikipediaConfig(500, 20)
	a := SyntheticWikipedia(cfg, rng.New(7))
	b := SyntheticWikipedia(cfg, rng.New(7))
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] {
			t.Fatal("same seed produced different traces")
		}
	}
}

func TestSyntheticNLANRBursty(t *testing.T) {
	cfg := DefaultNLANRConfig(2000)
	tr := SyntheticNLANR(cfg, rng.New(11))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() < 100 {
		t.Fatalf("trace too short: %d", tr.Len())
	}
	// Burstiness check: index of dispersion of per-second counts should
	// exceed 1 (Poisson would be ~1).
	bins, err := tr.RatePerSecond()
	if err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	for _, b := range bins {
		sum += float64(b)
		sumSq += float64(b) * float64(b)
	}
	n := float64(len(bins))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if iod := variance / mean; iod < 1.5 {
		t.Errorf("index of dispersion = %v, want bursty (> 1.5)", iod)
	}
}

// Property: synthetic traces are always sorted and nonnegative.
func TestSyntheticSortedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		wiki := SyntheticWikipedia(DefaultWikipediaConfig(100, 10), r.Split("w"))
		nlanr := SyntheticNLANR(DefaultNLANRConfig(100), r.Split("n"))
		for _, tr := range []*Trace{wiki, nlanr} {
			if !sort.Float64sAreSorted(tr.Times) {
				return false
			}
			if tr.Len() > 0 && tr.Times[0] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: Clip never yields timestamps outside [0, to-from).
func TestClipProperty(t *testing.T) {
	f := func(seed uint64, a, b uint8) bool {
		r := rng.New(seed)
		tr := SyntheticWikipedia(DefaultWikipediaConfig(60, 5), r)
		from, to := float64(a%60), float64(b%60)
		if from > to {
			from, to = to, from
		}
		c, err := tr.Clip(from, to)
		if err != nil {
			return false
		}
		for _, x := range c.Times {
			if x < 0 || x >= to-from {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
