package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadOutages(t *testing.T) {
	in := `# outage log
0.5 1.0 server 3

2.0 0.25 rack 0   # trailing comment is NOT allowed mid-line; this is a field
`
	// The last line has 6 fields, so it must be rejected.
	if _, err := ReadOutages(strings.NewReader(in)); err == nil {
		t.Fatal("accepted a 6-field line")
	}
	in = "# outage log\n0.5 1.0 server 3\n\n2.0 0.25 rack 0\n5 0 switch 1\n"
	outs, err := ReadOutages(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Outage{
		{Start: 0.5, Dur: 1.0, Scope: "server", Target: 3},
		{Start: 2.0, Dur: 0.25, Scope: "rack", Target: 0},
		{Start: 5, Dur: 0, Scope: "switch", Target: 1},
	}
	if len(outs) != len(want) {
		t.Fatalf("got %d outages, want %d", len(outs), len(want))
	}
	for i := range want {
		if outs[i] != want[i] {
			t.Errorf("outage %d = %+v, want %+v", i, outs[i], want[i])
		}
	}
}

func TestReadOutagesRejects(t *testing.T) {
	bad := []string{
		"0 1 server",             // 3 fields
		"0 1 server 1 extra",     // 5 fields
		"x 1 server 0",           // unparsable start
		"0 y server 0",           // unparsable dur
		"NaN 1 server 0",         // non-finite
		"0 Inf server 0",         // non-finite
		"-1 1 server 0",          // negative start
		"0 -1 server 0",          // negative dur
		"0 1 datacenter 0",       // unknown scope
		"0 1 server -2",          // negative target
		"0 1 server 1.5",         // non-integer target
		"5 1 server 0\n1 1 server 0", // decreasing starts
	}
	for _, in := range bad {
		if outs, err := ReadOutages(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q -> %v", in, outs)
		}
	}
}

func TestReadOutagesCap(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 5; i++ {
		b.WriteString("1 1 server 0\n")
	}
	if outs, err := ReadOutagesCapped(strings.NewReader(b.String()), 4); err == nil {
		t.Errorf("cap 4 accepted %d events", len(outs))
	}
	if outs, err := ReadOutagesCapped(strings.NewReader(b.String()), 5); err != nil || len(outs) != 5 {
		t.Errorf("cap 5: %v, %d events", err, len(outs))
	}
}

func TestWriteOutagesRoundTrip(t *testing.T) {
	outs := []Outage{
		{Start: 0.123456, Dur: 2, Scope: "pod", Target: 1},
		{Start: 3.5, Dur: 0.000001, Scope: "server", Target: 42},
	}
	var buf bytes.Buffer
	if err := WriteOutages(&buf, outs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadOutages(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(outs) {
		t.Fatalf("round trip: %d events, want %d", len(got), len(outs))
	}
	for i := range outs {
		if got[i] != outs[i] {
			t.Errorf("round trip %d = %+v, want %+v", i, got[i], outs[i])
		}
	}
	// Write must be a fixed point: re-emitting the parsed log is
	// byte-identical.
	var buf2 bytes.Buffer
	if err := WriteOutages(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Errorf("write not a fixed point:\n%q\n%q", buf.Bytes(), buf2.Bytes())
	}
}

// FuzzOutageLog pins the external-input contract of the outage-log
// reader: arbitrary bytes either fail cleanly or parse into events that
// survive a Write/Read round trip unchanged. Mirrors FuzzTraceRead.
func FuzzOutageLog(f *testing.F) {
	f.Add([]byte("0.5 1.0 server 3\n2.0 0.25 rack 0\n"))
	f.Add([]byte("# comment\n\n1 0 switch 0\n"))
	f.Add([]byte("0 1 pod -1\n"))
	f.Add([]byte("1e300 1e300 server 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		outs, err := ReadOutagesCapped(bytes.NewReader(data), 10_000)
		if err != nil {
			return // rejected cleanly
		}
		for i, o := range outs {
			if o.Start < 0 || o.Dur < 0 || o.Target < 0 {
				t.Fatalf("event %d out of range: %+v", i, o)
			}
			if i > 0 && o.Start < outs[i-1].Start {
				t.Fatalf("event %d start %g before previous %g", i, o.Start, outs[i-1].Start)
			}
		}
		var buf bytes.Buffer
		if err := WriteOutages(&buf, outs); err != nil {
			t.Fatal(err)
		}
		got, err := ReadOutages(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written log failed: %v\n%q", err, buf.Bytes())
		}
		if len(got) != len(outs) {
			t.Fatalf("round trip: %d events, want %d", len(got), len(outs))
		}
		for i := range outs {
			if got[i].Scope != outs[i].Scope || got[i].Target != outs[i].Target {
				t.Fatalf("round trip %d = %+v, want %+v", i, got[i], outs[i])
			}
		}
	})
}
