package trace

import (
	"math"
	"sort"

	"holdcsim/internal/rng"
)

// WikipediaConfig parameterizes the synthetic Wikipedia-like trace.
// Defaults (via DefaultWikipediaConfig) follow the published analyses of
// the Wikipedia workload [59]: a strong diurnal cycle with roughly 2:1
// peak-to-trough swing, ~10% short-term jitter, and occasional flash
// crowds.
type WikipediaConfig struct {
	Duration   float64 // trace length in seconds
	MeanRate   float64 // average arrivals/second over the whole trace
	DiurnalAmp float64 // fractional amplitude of the 24h sinusoid, [0,1)
	WeeklyAmp  float64 // fractional amplitude of the 7-day modulation
	NoiseAmp   float64 // fractional stddev of per-bucket Gaussian jitter
	DayPeriod  float64 // seconds per "day" (compress for short sims)
	FlashProb  float64 // probability per bucket of starting a flash crowd
	FlashBoost float64 // rate multiplier during a flash crowd
	FlashLen   float64 // flash crowd length in seconds
	BucketSec  float64 // rate-modulation bucket size in seconds
}

// DefaultWikipediaConfig returns the standard parameterization for the
// given duration and mean rate, with the diurnal period compressed so
// that at least two full "days" fit in the trace (the Fig. 4 provisioning
// study needs visible load swings within the simulated window).
func DefaultWikipediaConfig(duration, meanRate float64) WikipediaConfig {
	day := 86400.0
	if duration < 2*day {
		day = duration / 2
	}
	if day <= 0 {
		day = 1
	}
	return WikipediaConfig{
		Duration:   duration,
		MeanRate:   meanRate,
		DiurnalAmp: 0.35,
		WeeklyAmp:  0.08,
		NoiseAmp:   0.10,
		DayPeriod:  day,
		FlashProb:  0.0005,
		FlashBoost: 2.5,
		FlashLen:   day / 48,
		BucketSec:  1,
	}
}

// SyntheticWikipedia generates a Wikipedia-like arrival trace. The rate
// function is evaluated per bucket; within a bucket, arrivals are a
// Poisson process at the bucket rate (uniform placement), which matches
// how per-second trace replays treat the original trace.
func SyntheticWikipedia(cfg WikipediaConfig, r *rng.Source) *Trace {
	if cfg.BucketSec <= 0 {
		cfg.BucketSec = 1
	}
	nBuckets := int(math.Ceil(cfg.Duration / cfg.BucketSec))
	times := make([]float64, 0, int(cfg.Duration*cfg.MeanRate)+16)
	flashUntil := -1.0
	for b := 0; b < nBuckets; b++ {
		t0 := float64(b) * cfg.BucketSec
		rate := cfg.MeanRate
		// Diurnal + weekly modulation.
		rate *= 1 + cfg.DiurnalAmp*math.Sin(2*math.Pi*t0/cfg.DayPeriod)
		rate *= 1 + cfg.WeeklyAmp*math.Sin(2*math.Pi*t0/(7*cfg.DayPeriod))
		// Short-term jitter.
		if cfg.NoiseAmp > 0 {
			rate *= math.Max(0.05, 1+r.Normal(0, cfg.NoiseAmp))
		}
		// Flash crowds.
		if t0 < flashUntil {
			rate *= cfg.FlashBoost
		} else if cfg.FlashProb > 0 && r.Bernoulli(cfg.FlashProb) {
			flashUntil = t0 + cfg.FlashLen
			rate *= cfg.FlashBoost
		}
		n := r.Poisson(rate * cfg.BucketSec)
		for i := 0; i < n; i++ {
			times = append(times, t0+r.Float64()*cfg.BucketSec)
		}
	}
	sortFloats(times)
	return &Trace{Times: times}
}

// NLANRConfig parameterizes the synthetic NLANR-like HTTP trace: a
// heavy-tailed ON/OFF process. During ON periods requests arrive as a
// Poisson burst; OFF periods are Pareto-distributed, producing the
// self-similar burstiness observed in NLANR web traces.
type NLANRConfig struct {
	Duration   float64 // seconds
	OnRate     float64 // arrivals/second during ON periods
	MeanOn     float64 // mean ON period, seconds (exponential)
	OffXm      float64 // Pareto minimum OFF period, seconds
	OffAlpha   float64 // Pareto shape for OFF periods (1 < α ≤ 2 heavy)
	Background float64 // constant background arrivals/second
}

// DefaultNLANRConfig returns the standard parameterization.
func DefaultNLANRConfig(duration float64) NLANRConfig {
	return NLANRConfig{
		Duration:   duration,
		OnRate:     40,
		MeanOn:     2.0,
		OffXm:      0.5,
		OffAlpha:   1.5,
		Background: 2,
	}
}

// SyntheticNLANR generates an NLANR-like bursty arrival trace.
func SyntheticNLANR(cfg NLANRConfig, r *rng.Source) *Trace {
	var times []float64
	// Background Poisson stream.
	for t := r.Exp(1 / cfg.Background); t < cfg.Duration; t += r.Exp(1 / cfg.Background) {
		times = append(times, t)
	}
	// ON/OFF foreground.
	t := 0.0
	for t < cfg.Duration {
		on := r.Exp(cfg.MeanOn)
		end := math.Min(t+on, cfg.Duration)
		for a := t + r.Exp(1/cfg.OnRate); a < end; a += r.Exp(1 / cfg.OnRate) {
			times = append(times, a)
		}
		t = end + r.Pareto(cfg.OffXm, cfg.OffAlpha)
	}
	sortFloats(times)
	return &Trace{Times: times}
}

func sortFloats(x []float64) { sort.Float64s(x) }
