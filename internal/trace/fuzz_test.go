package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzTraceRead: for arbitrary input text, Read either returns an error
// (never panics) or yields a trace whose Write→Read round trip is the
// identity. The first Write normalizes precision to 6 decimals; from
// then on the representation must be a fixed point.
func FuzzTraceRead(f *testing.F) {
	f.Add("")
	f.Add("0\n1\n2\n")
	f.Add("# comment\n\n0.5\n0.500001\n")
	f.Add("1e300\n")
	f.Add("0.1\nnot a number\n")
	f.Add("NaN\n")
	f.Add("+Inf\n")
	f.Add("3\n2\n1\n")
	f.Add("-1\n")
	f.Add("1e-9\n2e-9\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input))
		if err != nil {
			return // malformed input must error, and it did — cleanly
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Read returned an invalid trace: %v", err)
		}
		var first bytes.Buffer
		if err := tr.Write(&first); err != nil {
			t.Fatalf("Write: %v", err)
		}
		tr2, err := Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("reparse of own output failed: %v\noutput:\n%s", err, first.String())
		}
		if tr2.Len() != tr.Len() {
			t.Fatalf("round trip changed length: %d -> %d", tr.Len(), tr2.Len())
		}
		var second bytes.Buffer
		if err := tr2.Write(&second); err != nil {
			t.Fatalf("second Write: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("Write/Read is not a fixed point:\nfirst:\n%s\nsecond:\n%s",
				first.String(), second.String())
		}
	})
}

func TestReadRejectsNonFinite(t *testing.T) {
	for _, in := range []string{"NaN\n", "+Inf\n", "-Inf\n", "Infinity\n", "0\nnan\n"} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) accepted a non-finite timestamp", in)
		}
	}
}

func TestValidateRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		tr := &Trace{Times: []float64{0, bad}}
		if err := tr.Validate(); err == nil {
			t.Errorf("Validate accepted %g", bad)
		}
	}
}

func TestClipEdgeCases(t *testing.T) {
	empty := &Trace{}
	if got, err := empty.Clip(0, 10); err != nil || got.Len() != 0 {
		t.Errorf("Clip of empty trace: %v, %v", got, err)
	}
	single := &Trace{Times: []float64{5}}
	cases := []struct {
		from, to float64
		want     int
	}{
		{0, 10, 1},    // window covers the event
		{5, 5.1, 1},   // from is inclusive
		{0, 5, 0},     // to is exclusive
		{6, 10, 0},    // window after the event
		{10, 0, 0},    // inverted window: empty, not a panic
		{5.1, 5.1, 0}, // empty window
	}
	for _, tc := range cases {
		got, err := single.Clip(tc.from, tc.to)
		if err != nil {
			t.Fatalf("Clip(%g, %g): %v", tc.from, tc.to, err)
		}
		if got.Len() != tc.want {
			t.Errorf("Clip(%g, %g) has %d events, want %d", tc.from, tc.to, got.Len(), tc.want)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("Clip(%g, %g) produced invalid trace: %v", tc.from, tc.to, err)
		}
	}
	// Rebasing: the window start becomes t=0.
	if got, err := single.Clip(4, 6); err != nil || got.Len() != 1 || got.Times[0] != 1 {
		t.Errorf("Clip(4, 6) = %v (err %v), want [1]", got, err)
	}
}

// TestClipRejectsNonFinite is the regression test for the NaN-window
// bug: NaN bounds make every sort.SearchFloat64s comparison false,
// yielding an arbitrary window, and a NaN from poisons every rebased
// timestamp. All non-finite bounds now error.
func TestClipRejectsNonFinite(t *testing.T) {
	tr := &Trace{Times: []float64{0, 1, 2}}
	bad := []struct{ from, to float64 }{
		{math.NaN(), 2},
		{0, math.NaN()},
		{math.NaN(), math.NaN()},
		{math.Inf(-1), 2},
		{0, math.Inf(1)},
	}
	for _, tc := range bad {
		if got, err := tr.Clip(tc.from, tc.to); err == nil {
			t.Errorf("Clip(%g, %g) accepted non-finite bounds, returned %v", tc.from, tc.to, got.Times)
		}
	}
	// The clipped output must still be a valid trace even for odd but
	// finite windows (negative from shifts timestamps up, never below 0).
	got, err := tr.Clip(-5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("Clip(-5, 100) produced invalid trace: %v", err)
	}
	if got.Len() != 3 || got.Times[0] != 5 {
		t.Errorf("Clip(-5, 100) = %v, want rebased [5 6 7]", got.Times)
	}
}

func TestScaleEdgeCases(t *testing.T) {
	empty := &Trace{}
	empty.Scale(2) // no-op, no panic
	if empty.Len() != 0 {
		t.Fatal("Scale changed an empty trace")
	}
	single := &Trace{Times: []float64{3}}
	single.Scale(0.5)
	if single.Times[0] != 1.5 {
		t.Errorf("Scale(0.5) = %v, want [1.5]", single.Times)
	}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Scale(%g) did not panic", bad)
				}
			}()
			(&Trace{Times: []float64{1}}).Scale(bad)
		}()
	}
}
