package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Outage is one recorded failure event: a component (or failure domain)
// goes down at Start seconds for Dur seconds. Scope names the failure
// domain kind; Target indexes the domain instance. The fault package
// maps Scope onto its ScopeKind vocabulary and replays the event
// through the injector.
type Outage struct {
	Start  float64
	Dur    float64
	Scope  string
	Target int
}

// OutageScopes is the accepted scope vocabulary of an outage log, in
// the fault package's ScopeKind order.
var OutageScopes = [...]string{"server", "rack", "pod", "switch"}

// DefaultMaxOutages bounds how many events ReadOutages accepts, so a
// pathological or hostile log cannot exhaust memory. Real incident logs
// are orders of magnitude smaller.
const DefaultMaxOutages = 1_000_000

// ReadOutages parses an outage log: one `start dur scope target` event
// per line (whitespace-separated), blank lines and '#' comments
// skipped. Events are validated — finite nonnegative start and
// duration, nondecreasing starts, a known scope word, nonnegative
// target — and capped at DefaultMaxOutages.
func ReadOutages(r io.Reader) ([]Outage, error) {
	return ReadOutagesCapped(r, DefaultMaxOutages)
}

// ReadOutagesCapped is ReadOutages with an explicit event bound.
// max <= 0 means DefaultMaxOutages.
func ReadOutagesCapped(r io.Reader, max int) ([]Outage, error) {
	if max <= 0 {
		max = DefaultMaxOutages
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var out []Outage
	line := 0
	prev := 0.0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		fields := strings.Fields(s)
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: outage line %d: want `start dur scope target`, got %d fields", line, len(fields))
		}
		start, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: outage line %d: start: %w", line, err)
		}
		dur, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: outage line %d: dur: %w", line, err)
		}
		if math.IsNaN(start) || math.IsInf(start, 0) || math.IsNaN(dur) || math.IsInf(dur, 0) {
			return nil, fmt.Errorf("trace: outage line %d: non-finite time", line)
		}
		if start < 0 || dur < 0 {
			return nil, fmt.Errorf("trace: outage line %d: negative time", line)
		}
		if start < prev {
			return nil, fmt.Errorf("trace: outage line %d: start %g before previous %g", line, start, prev)
		}
		prev = start
		scope := fields[2]
		known := false
		for _, k := range OutageScopes {
			if scope == k {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("trace: outage line %d: unknown scope %q (want one of %v)", line, scope, OutageScopes)
		}
		target, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("trace: outage line %d: target: %w", line, err)
		}
		if target < 0 {
			return nil, fmt.Errorf("trace: outage line %d: negative target %d", line, target)
		}
		if len(out) >= max {
			return nil, fmt.Errorf("trace: outage line %d: more than %d events", line, max)
		}
		out = append(out, Outage{Start: start, Dur: dur, Scope: scope, Target: target})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteOutages emits an outage log in the format ReadOutages parses,
// with 6-digit time precision.
func WriteOutages(w io.Writer, outs []Outage) error {
	bw := bufio.NewWriter(w)
	for _, o := range outs {
		if _, err := fmt.Fprintf(bw, "%.6f %.6f %s %d\n", o.Start, o.Dur, o.Scope, o.Target); err != nil {
			return err
		}
	}
	return bw.Flush()
}
