package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds matched %d/100 draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(7).Split("arrivals")
	b := New(7).Split("arrivals")
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split with same label diverged")
		}
	}
}

func TestSplitIndependent(t *testing.T) {
	parent := New(7)
	a := parent.Split("arrivals")
	b := parent.Split("service")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams matched %d/100 draws", same)
	}
}

func TestExpMean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(3.0)
	}
	mean := sum / n
	if math.Abs(mean-3.0) > 0.05 {
		t.Errorf("Exp(3) sample mean = %v", mean)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(13)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(17)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 || math.Abs(sd-2) > 0.05 {
		t.Errorf("Normal(10,2): mean=%v sd=%v", mean, sd)
	}
}

func TestParetoSupport(t *testing.T) {
	s := New(19)
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(1.5, 2.0); v < 1.5 {
			t.Fatalf("Pareto(1.5, 2) = %v below xm", v)
		}
	}
}

func TestParetoMean(t *testing.T) {
	s := New(23)
	const n = 500000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Pareto(1, 3) // mean = 3/(3-1) = 1.5
	}
	mean := sum / n
	if math.Abs(mean-1.5) > 0.02 {
		t.Errorf("Pareto(1,3) sample mean = %v, want ~1.5", mean)
	}
}

func TestPoissonSmallMean(t *testing.T) {
	s := New(29)
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Poisson(4.5)
	}
	mean := float64(sum) / n
	if math.Abs(mean-4.5) > 0.05 {
		t.Errorf("Poisson(4.5) sample mean = %v", mean)
	}
}

func TestPoissonLargeMean(t *testing.T) {
	s := New(31)
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Poisson(200)
	}
	mean := float64(sum) / n
	if math.Abs(mean-200) > 1 {
		t.Errorf("Poisson(200) sample mean = %v", mean)
	}
}

func TestPoissonZeroMean(t *testing.T) {
	s := New(37)
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
}

func TestBernoulli(t *testing.T) {
	s := New(41)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", p)
	}
}

func TestIntNPerm(t *testing.T) {
	s := New(43)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.IntN(10)
		if v < 0 || v >= 10 {
			t.Fatalf("IntN(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("IntN(10) covered %d values", len(seen))
	}
	p := s.Perm(8)
	mark := make([]bool, 8)
	for _, v := range p {
		mark[v] = true
	}
	for i, m := range mark {
		if !m {
			t.Errorf("Perm(8) missing %d: %v", i, p)
		}
	}
}

func TestLogNormalMean(t *testing.T) {
	s := New(47)
	const n = 400000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.LogNormal(0, 0.5)
	}
	want := math.Exp(0.125) // e^(sigma^2/2)
	mean := sum / n
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("LogNormal(0,0.5) sample mean = %v, want ~%v", mean, want)
	}
}
