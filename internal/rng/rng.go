// Package rng provides deterministic pseudo-random streams for the
// simulator.
//
// Every stochastic component (arrival processes, service-time samplers,
// ECMP hashing, trace synthesis, measurement noise) draws from its own
// Source, derived from the experiment's master seed and a string label.
// Splitting by label means adding a new consumer never perturbs the draws
// seen by existing ones, which keeps experiments comparable across code
// versions — a property the paper's parameter sweeps (Figs. 5, 6, 8)
// depend on.
package rng

import (
	"math"
	"math/rand/v2"
)

// Source is a deterministic random stream.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded from the two words of seed material.
func New(seed uint64) *Source {
	return &Source{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Split derives an independent child stream from s and a label. The same
// (seed, label) pair always yields the same stream.
func (s *Source) Split(label string) *Source {
	h := fnv64(label)
	// Mix the parent stream position into the child seed so repeated
	// splits with the same label produce distinct streams.
	a := s.r.Uint64() ^ h
	b := s.r.Uint64() ^ (h * 0x100000001b3)
	return &Source{r: rand.New(rand.NewPCG(a, b))}
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Uint64 returns a uniform 64-bit value.
func (s *Source) Uint64() uint64 { return s.r.Uint64() }

// IntN returns a uniform value in [0, n). n must be > 0.
func (s *Source) IntN(n int) int { return s.r.IntN(n) }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Uniform returns a value uniform in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Exp returns an exponentially distributed value with the given mean.
func (s *Source) Exp(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// Normal returns a normally distributed value.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// LogNormal returns a log-normally distributed value where mu and sigma
// are the parameters of the underlying normal.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Pareto returns a Pareto-distributed value with minimum xm and shape
// alpha (> 0). Heavy-tailed for alpha <= 2; used for bursty on/off trace
// synthesis.
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := 1 - s.r.Float64() // in (0, 1]
	return xm / math.Pow(u, 1/alpha)
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool { return s.r.Float64() < p }

// Poisson returns a Poisson-distributed count with the given mean, using
// inversion for small means and the PTRS transformed-rejection method is
// unnecessary at our scale; for large means we fall back to a normal
// approximation, which is adequate for synthetic trace bucket counts.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= s.r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := s.Normal(mean, math.Sqrt(mean))
	if n < 0 {
		return 0
	}
	return int(math.Round(n))
}

func fnv64(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
