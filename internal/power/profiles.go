package power

import (
	"fmt"

	"holdcsim/internal/simtime"
)

// ServerProfile carries every per-state power figure and transition cost
// for one server model. The reference numbers follow the paper's
// validation platform: a 10-core Intel Xeon E5-2680-class server measured
// through RAPL/IPMI, split into CPU (cores + package), DRAM, and platform
// (fans, PSU, disks) components so Fig. 9's breakdown can be reproduced.
type ServerProfile struct {
	Name string

	// Cores is the total core count across all sockets; Sockets is the
	// number of processor packages (0 means 1). Cores must divide evenly
	// among sockets. Package C-state power figures are per socket.
	Cores   int
	Sockets int
	// Per-core draw (watts) by C-state. CoreActive is C0 executing at
	// nominal frequency; CoreIdle is C0 idling (no instruction stream).
	CoreActive float64
	CoreIdle   float64
	CoreC1     float64
	CoreC3     float64
	CoreC6     float64

	// Package/uncore draw by package C-state.
	PkgPC0 float64
	PkgPC2 float64
	PkgPC6 float64

	// DRAM draw: active (any core busy), idle (S0, no core busy),
	// self-refresh (S3).
	DRAMActive      float64
	DRAMIdle        float64
	DRAMSelfRefresh float64

	// Platform draw (fans, PSU overhead, disk, NIC) by system state.
	PlatformS0 float64
	PlatformS3 float64
	PlatformS5 float64

	// Wake transitions (deeper C-state entry is effectively immediate at
	// this abstraction level, matching the paper's treatment).
	WakeC1  Transition
	WakeC3  Transition
	WakeC6  Transition
	WakePC6 Transition // package C6 exit, < 1 ms in the paper
	WakeS3  Transition // suspend-to-RAM resume: seconds at high draw
	WakeS5  Transition // full boot

	// SleepEntry is the system suspend transition (flush, device
	// quiesce, context save): seconds at near-idle draw. Entry cost is
	// what makes over-aggressive delay timers expensive — it is paid on
	// every sleep, productive or not.
	SleepEntry Transition

	PStates []PState
}

// Validate checks structural sanity: positive core count, monotone
// C-state draws, and nonnegative transitions.
func (p *ServerProfile) Validate() error {
	if p.Cores <= 0 {
		return fmt.Errorf("power: profile %q: cores must be positive", p.Name)
	}
	if p.Sockets < 0 {
		return fmt.Errorf("power: profile %q: negative socket count", p.Name)
	}
	if s := p.SocketCount(); p.Cores%s != 0 {
		return fmt.Errorf("power: profile %q: %d cores do not divide into %d sockets",
			p.Name, p.Cores, s)
	}
	if !(p.CoreActive >= p.CoreIdle && p.CoreIdle >= p.CoreC1 &&
		p.CoreC1 >= p.CoreC3 && p.CoreC3 >= p.CoreC6 && p.CoreC6 >= 0) {
		return fmt.Errorf("power: profile %q: core C-state draws not monotone", p.Name)
	}
	if !(p.PkgPC0 >= p.PkgPC2 && p.PkgPC2 >= p.PkgPC6 && p.PkgPC6 >= 0) {
		return fmt.Errorf("power: profile %q: package C-state draws not monotone", p.Name)
	}
	if p.WakeS3.Latency < 0 || p.WakeC6.Latency < 0 || p.WakePC6.Latency < 0 ||
		p.SleepEntry.Latency < 0 {
		return fmt.Errorf("power: profile %q: negative transition latency", p.Name)
	}
	if len(p.PStates) == 0 {
		return fmt.Errorf("power: profile %q: no P-states", p.Name)
	}
	for _, ps := range p.PStates {
		if ps.Speed <= 0 || ps.PowerScale <= 0 {
			return fmt.Errorf("power: profile %q: invalid P-state %q", p.Name, ps.Name)
		}
	}
	return nil
}

// CoreWatts reports one core's draw in the given C-state; busy selects
// between executing and idling in C0. pstate scales the active draw.
func (p *ServerProfile) CoreWatts(c CState, busy bool, ps PState) float64 {
	switch c {
	case C0:
		if busy {
			return p.CoreActive * ps.PowerScale
		}
		return p.CoreIdle
	case C1:
		return p.CoreC1
	case C3:
		return p.CoreC3
	case C6:
		return p.CoreC6
	}
	return p.CoreIdle
}

// PkgWatts reports the package draw in the given package C-state.
func (p *ServerProfile) PkgWatts(s PkgCState) float64 {
	switch s {
	case PC0:
		return p.PkgPC0
	case PC2:
		return p.PkgPC2
	case PC6:
		return p.PkgPC6
	}
	return p.PkgPC0
}

// SocketCount reports the number of processor packages (at least 1).
func (p *ServerProfile) SocketCount() int {
	if p.Sockets <= 0 {
		return 1
	}
	return p.Sockets
}

// CoresPerSocket reports the per-package core count.
func (p *ServerProfile) CoresPerSocket() int { return p.Cores / p.SocketCount() }

// MaxWatts reports the server's peak draw (all cores busy at nominal).
func (p *ServerProfile) MaxWatts() float64 {
	return float64(p.Cores)*p.CoreActive + float64(p.SocketCount())*p.PkgPC0 +
		p.DRAMActive + p.PlatformS0
}

// IdleWatts reports the "Active-Idle" baseline draw: S0, all cores idle
// in C0, no sleep states engaged (Sec. IV-B's baseline policy).
func (p *ServerProfile) IdleWatts() float64 {
	return float64(p.Cores)*p.CoreIdle + float64(p.SocketCount())*p.PkgPC0 +
		p.DRAMIdle + p.PlatformS0
}

// SleepWatts reports the draw in S3 (system sleep).
func (p *ServerProfile) SleepWatts() float64 {
	return p.DRAMSelfRefresh + p.PlatformS3
}

// XeonE5_2680 returns the 10-core Xeon E5-2680-class profile used in the
// paper's validation (Sec. V-A) and case studies (Sec. IV-C). CPU package
// figures are calibrated so RAPL-style package power spans roughly
// 5–30 W between deep idle and full load, matching Fig. 12's range; the
// full-server figures (with DRAM and platform) give the ~100 W idle /
// ~200 W busy server the energy case studies assume.
func XeonE5_2680() *ServerProfile {
	return &ServerProfile{
		Name:  "intel-xeon-e5-2680",
		Cores: 10,

		CoreActive: 2.2,
		CoreIdle:   1.1,
		CoreC1:     0.7,
		CoreC3:     0.3,
		CoreC6:     0.05,

		PkgPC0: 5.0,
		PkgPC2: 2.5,
		PkgPC6: 0.8,

		DRAMActive:      6.0,
		DRAMIdle:        3.0,
		DRAMSelfRefresh: 0.6,

		PlatformS0: 65.0,
		PlatformS3: 2.5,
		PlatformS5: 0.5,

		WakeC1:  Transition{Latency: 1 * simtime.Microsecond, Watts: 0.7},
		WakeC3:  Transition{Latency: 50 * simtime.Microsecond, Watts: 1.1},
		WakeC6:  Transition{Latency: 100 * simtime.Microsecond, Watts: 1.5},
		WakePC6: Transition{Latency: 600 * simtime.Microsecond, Watts: 4.0},
		WakeS3:  Transition{Latency: 1500 * simtime.Millisecond, Watts: 120.0},
		WakeS5:  Transition{Latency: 30 * simtime.Second, Watts: 150.0},

		SleepEntry: Transition{Latency: 3 * simtime.Second, Watts: 95.0},

		PStates: DefaultPStates(),
	}
}

// FourCoreServer returns the generic 4-core server used by the Sec. IV-A
// provisioning and Sec. IV-B delay-timer farms (50 four-core servers).
// Its suspend resume is fast (400 ms), modeling the "highly responsive
// idle state" the delay-timer study relies on; the flap-vs-idle-burn
// balance then puts the optimal τ at sub-second scale for short-service
// workloads, as in the paper's Fig. 5.
func FourCoreServer() *ServerProfile {
	p := XeonE5_2680()
	p.Name = "generic-4core"
	p.Cores = 4
	p.CoreActive = 6.0
	p.CoreIdle = 3.0
	p.CoreC1 = 2.0
	p.CoreC3 = 0.9
	p.CoreC6 = 0.15
	p.PkgPC0 = 12.0
	p.PkgPC2 = 6.0
	p.PkgPC6 = 2.0
	p.WakeS3 = Transition{Latency: 400 * simtime.Millisecond, Watts: 110.0}
	p.SleepEntry = Transition{Latency: 2500 * simtime.Millisecond, Watts: 105.0}
	return p
}

// DualSocketXeon returns a two-socket, 20-core variant of the Xeon
// profile (Table I's "multiple sockets" capability): each package has
// its own PC0/PC2/PC6 state and can sleep independently.
func DualSocketXeon() *ServerProfile {
	p := XeonE5_2680()
	p.Name = "intel-xeon-e5-2680-2s"
	p.Cores = 20
	p.Sockets = 2
	return p
}

// SwitchProfile carries power figures for one switch model.
type SwitchProfile struct {
	Name string

	// ChassisWatts is the always-on base draw of the chassis (fans,
	// management CPU, fabric) while the switch is powered.
	ChassisWatts float64

	LineCards        int
	PortsPerLineCard int

	// Line-card draw by state, excluding ports.
	LineCardActiveW float64
	LineCardSleepW  float64

	// Per-port draw by state.
	PortActiveW float64
	PortLPIW    float64

	// Wake transitions.
	PortWake     Transition // LPI -> Active (IEEE 802.3az order of µs)
	LineCardWake Transition // Sleep -> Active
	SwitchWake   Transition // Off -> Active (whole switch)

	// LinkRatesBps lists the rates available for adaptive link rate
	// (Sec. III-B), ascending. PortRateScale maps a rate index to the
	// fraction of PortActiveW drawn at that rate.
	LinkRatesBps  []float64
	PortRateScale []float64
}

// Validate checks structural sanity.
func (p *SwitchProfile) Validate() error {
	if p.LineCards <= 0 || p.PortsPerLineCard <= 0 {
		return fmt.Errorf("power: switch profile %q: needs line cards and ports", p.Name)
	}
	if p.ChassisWatts < 0 || p.PortActiveW < 0 || p.PortLPIW < 0 {
		return fmt.Errorf("power: switch profile %q: negative draw", p.Name)
	}
	if p.PortLPIW > p.PortActiveW {
		return fmt.Errorf("power: switch profile %q: LPI draws more than active", p.Name)
	}
	if len(p.LinkRatesBps) != len(p.PortRateScale) {
		return fmt.Errorf("power: switch profile %q: rate tables mismatched", p.Name)
	}
	for i := 1; i < len(p.LinkRatesBps); i++ {
		if p.LinkRatesBps[i] <= p.LinkRatesBps[i-1] {
			return fmt.Errorf("power: switch profile %q: link rates not ascending", p.Name)
		}
	}
	return nil
}

// Ports reports the total port count.
func (p *SwitchProfile) Ports() int { return p.LineCards * p.PortsPerLineCard }

// MaxWatts reports the switch's peak draw (everything active, full rate).
func (p *SwitchProfile) MaxWatts() float64 {
	return p.ChassisWatts +
		float64(p.LineCards)*p.LineCardActiveW +
		float64(p.Ports())*p.PortActiveW
}

// Cisco2960_24 returns the Cisco WS-C2960-24-S profile from the paper's
// switch validation (Sec. V-B): 24 ports on one line card, measured base
// power 14.7 W and 0.23 W per active port.
func Cisco2960_24() *SwitchProfile {
	return &SwitchProfile{
		Name:             "cisco-ws-c2960-24-s",
		ChassisWatts:     12.7,
		LineCards:        1,
		PortsPerLineCard: 24,
		LineCardActiveW:  2.0, // chassis 12.7 + line card 2.0 = paper's 14.7 W base
		LineCardSleepW:   0.4,
		PortActiveW:      0.23,
		PortLPIW:         0.03,
		PortWake:         Transition{Latency: 5 * simtime.Microsecond, Watts: 0.23},
		LineCardWake:     Transition{Latency: 2 * simtime.Millisecond, Watts: 2.0},
		SwitchWake:       Transition{Latency: 45 * simtime.Second, Watts: 14.0},
		LinkRatesBps:     []float64{100e6, 1e9},
		PortRateScale:    []float64{0.45, 1.0},
	}
}

// DataCenter10G returns a generic 10 GbE top-of-rack/aggregation switch
// profile for the fat-tree case study (Sec. IV-D), derived the way the
// paper describes (architectural breakdown in the PopCorns study [44]).
func DataCenter10G(ports int) *SwitchProfile {
	if ports <= 0 {
		ports = 48
	}
	return &SwitchProfile{
		Name:             "generic-10g-tor",
		ChassisWatts:     25.0,
		LineCards:        1,
		PortsPerLineCard: ports,
		LineCardActiveW:  60.0,
		LineCardSleepW:   5.0,
		PortActiveW:      1.2,
		PortLPIW:         0.12,
		PortWake:         Transition{Latency: 5 * simtime.Microsecond, Watts: 1.2},
		LineCardWake:     Transition{Latency: 2 * simtime.Millisecond, Watts: 30.0},
		SwitchWake:       Transition{Latency: 60 * simtime.Second, Watts: 80.0},
		LinkRatesBps:     []float64{1e9, 10e9},
		PortRateScale:    []float64{0.35, 1.0},
	}
}
