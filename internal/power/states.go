// Package power implements HolDCSim's hierarchical ACPI-based power model
// (paper Secs. III-A, III-F): core C-states, package C-states, system
// S-states and P-states (DVFS) for servers, and Active/LPI/Off port
// states, Active/Sleep/Off line-card states and adaptive link rates for
// switches. Profiles carry per-state power draws and transition
// latencies; the server and switch modules drive the state machines and
// integrate energy through stats.EnergyMeter.
package power

import (
	"fmt"

	"holdcsim/internal/simtime"
)

// CState is a core low-power state. Deeper states save more power but
// cost more wake latency.
type CState int

// Core C-states, shallow to deep.
const (
	C0 CState = iota // executing or idle-active
	C1               // halt
	C3               // deep sleep, caches flushed
	C6               // power gated
)

// String implements fmt.Stringer.
func (c CState) String() string {
	switch c {
	case C0:
		return "C0"
	case C1:
		return "C1"
	case C3:
		return "C3"
	case C6:
		return "C6"
	}
	return fmt.Sprintf("C(%d)", int(c))
}

// PkgCState is a package (uncore) low-power state.
type PkgCState int

// Package C-states, shallow to deep. The package may enter PC6 only when
// every core is in C6.
const (
	PC0 PkgCState = iota // package active
	PC2                  // clocks gated
	PC6                  // package power gated
)

// String implements fmt.Stringer.
func (p PkgCState) String() string {
	switch p {
	case PC0:
		return "PC0"
	case PC2:
		return "PC2"
	case PC6:
		return "PC6"
	}
	return fmt.Sprintf("PC(%d)", int(p))
}

// GState is an ACPI global system state (paper Sec. III-A: "ACPI uses
// global states, Gx, to represent states of the entire system. For each
// Gx state, there is one or more system sleep states").
type GState int

// Global states.
const (
	G0 GState = iota // working (S0)
	G1               // sleeping (S1-S4; S3 here)
	G2               // soft off (S5)
	G3               // mechanical off
)

// String implements fmt.Stringer.
func (g GState) String() string {
	switch g {
	case G0:
		return "G0"
	case G1:
		return "G1"
	case G2:
		return "G2"
	case G3:
		return "G3"
	}
	return fmt.Sprintf("G(%d)", int(g))
}

// GlobalState maps a system sleep state to its ACPI global state.
func GlobalState(s SState) GState {
	switch s {
	case S0:
		return G0
	case S3:
		return G1
	case S5:
		return G2
	}
	return G0
}

// SState is an ACPI system sleep state.
type SState int

// System states used by the simulator. S3 is "system sleep"
// (suspend-to-RAM) in the paper's case studies; S5 is soft-off.
const (
	S0 SState = iota // working
	S3               // suspend to RAM
	S5               // soft off
)

// String implements fmt.Stringer.
func (s SState) String() string {
	switch s {
	case S0:
		return "S0"
	case S3:
		return "S3"
	case S5:
		return "S5"
	}
	return fmt.Sprintf("S(%d)", int(s))
}

// PState is a DVFS performance state: a frequency/voltage operating
// point. Speed is the performance ratio relative to nominal (1.0);
// PowerScale multiplies the core's dynamic power (≈ cubic in frequency
// for voltage-frequency scaling).
type PState struct {
	Name       string
	Speed      float64
	PowerScale float64
}

// DefaultPStates returns a typical 4-point DVFS ladder. PowerScale
// follows the cubic rule normalized to the nominal point.
func DefaultPStates() []PState {
	mk := func(name string, speed float64) PState {
		return PState{Name: name, Speed: speed, PowerScale: speed * speed * speed}
	}
	return []PState{
		mk("P0", 1.0), // turbo/nominal
		mk("P1", 0.85),
		mk("P2", 0.70),
		mk("P3", 0.55),
	}
}

// PortState is a switch port power state (paper Sec. III-B): active,
// Low Power Idle per IEEE 802.3az, or off.
type PortState int

// Port states.
const (
	PortActive PortState = iota
	PortLPI
	PortOff
)

// String implements fmt.Stringer.
func (p PortState) String() string {
	switch p {
	case PortActive:
		return "Active"
	case PortLPI:
		return "LPI"
	case PortOff:
		return "Off"
	}
	return fmt.Sprintf("Port(%d)", int(p))
}

// LineCardState is a switch line-card power state.
type LineCardState int

// Line-card states.
const (
	LineCardActive LineCardState = iota
	LineCardSleep
	LineCardOff
)

// String implements fmt.Stringer.
func (l LineCardState) String() string {
	switch l {
	case LineCardActive:
		return "Active"
	case LineCardSleep:
		return "Sleep"
	case LineCardOff:
		return "Off"
	}
	return fmt.Sprintf("LineCard(%d)", int(l))
}

// Transition describes one power-state move: how long it takes and the
// draw while in flight. Wake transitions typically burn near-active
// power while delivering no work — the core inefficiency that delay
// timers (Sec. IV-B) exist to manage.
type Transition struct {
	Latency simtime.Time
	Watts   float64
}
