package power

import "testing"

func TestGStateMapping(t *testing.T) {
	cases := []struct {
		s SState
		g GState
	}{
		{S0, G0},
		{S3, G1},
		{S5, G2},
	}
	for _, c := range cases {
		if got := GlobalState(c.s); got != c.g {
			t.Errorf("GlobalState(%v) = %v, want %v", c.s, got, c.g)
		}
	}
}

func TestGStateString(t *testing.T) {
	want := map[GState]string{G0: "G0", G1: "G1", G2: "G2", G3: "G3"}
	for g, s := range want {
		if g.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(g), g.String(), s)
		}
	}
	if GState(9).String() != "G(9)" {
		t.Error("unknown G-state formatting")
	}
}

func TestDualSocketValidation(t *testing.T) {
	p := DualSocketXeon()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Cores = 19 // does not divide by 2 sockets
	if p.Validate() == nil {
		t.Error("indivisible core count accepted")
	}
	p = DualSocketXeon()
	p.Sockets = -1
	if p.Validate() == nil {
		t.Error("negative sockets accepted")
	}
	// Zero sockets means one.
	p = XeonE5_2680()
	if p.SocketCount() != 1 || p.CoresPerSocket() != 10 {
		t.Errorf("default socket count = %d", p.SocketCount())
	}
}
