package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStateStrings(t *testing.T) {
	if C0.String() != "C0" || C6.String() != "C6" || CState(9).String() != "C(9)" {
		t.Error("CState.String broken")
	}
	if PC0.String() != "PC0" || PC6.String() != "PC6" || PkgCState(9).String() != "PC(9)" {
		t.Error("PkgCState.String broken")
	}
	if S0.String() != "S0" || S3.String() != "S3" || S5.String() != "S5" || SState(9).String() != "S(9)" {
		t.Error("SState.String broken")
	}
	if PortActive.String() != "Active" || PortLPI.String() != "LPI" || PortOff.String() != "Off" {
		t.Error("PortState.String broken")
	}
	if LineCardActive.String() != "Active" || LineCardSleep.String() != "Sleep" || LineCardOff.String() != "Off" {
		t.Error("LineCardState.String broken")
	}
	if PortState(9).String() != "Port(9)" || LineCardState(9).String() != "LineCard(9)" {
		t.Error("unknown state formatting broken")
	}
}

func TestXeonProfileValid(t *testing.T) {
	p := XeonE5_2680()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Cores != 10 {
		t.Errorf("Cores = %d", p.Cores)
	}
	// The RAPL-equivalent CPU package span should be roughly 5-30 W,
	// matching the Fig. 12 validation range.
	cpuIdle := float64(p.Cores)*p.CoreC6 + p.PkgPC6
	cpuBusy := float64(p.Cores)*p.CoreActive + p.PkgPC0
	if cpuIdle > 5 || cpuBusy < 20 || cpuBusy > 40 {
		t.Errorf("CPU package span %v..%v W outside Fig.12-like range", cpuIdle, cpuBusy)
	}
}

func TestFourCoreProfileValid(t *testing.T) {
	p := FourCoreServer()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Cores != 4 {
		t.Errorf("Cores = %d", p.Cores)
	}
	if p.SleepWatts() >= p.IdleWatts() || p.IdleWatts() >= p.MaxWatts() {
		t.Errorf("power ordering broken: sleep=%v idle=%v max=%v",
			p.SleepWatts(), p.IdleWatts(), p.MaxWatts())
	}
}

func TestProfileValidationRejects(t *testing.T) {
	p := XeonE5_2680()
	p.Cores = 0
	if p.Validate() == nil {
		t.Error("zero cores accepted")
	}

	p = XeonE5_2680()
	p.CoreC6 = p.CoreC3 + 1 // non-monotone
	if p.Validate() == nil {
		t.Error("non-monotone C-state draws accepted")
	}

	p = XeonE5_2680()
	p.PkgPC6 = p.PkgPC2 + 1
	if p.Validate() == nil {
		t.Error("non-monotone package draws accepted")
	}

	p = XeonE5_2680()
	p.WakeS3.Latency = -1
	if p.Validate() == nil {
		t.Error("negative wake latency accepted")
	}

	p = XeonE5_2680()
	p.PStates = nil
	if p.Validate() == nil {
		t.Error("missing P-states accepted")
	}

	p = XeonE5_2680()
	p.PStates = []PState{{Name: "bad", Speed: 0, PowerScale: 1}}
	if p.Validate() == nil {
		t.Error("zero-speed P-state accepted")
	}
}

func TestCoreWatts(t *testing.T) {
	p := XeonE5_2680()
	nominal := p.PStates[0]
	if got := p.CoreWatts(C0, true, nominal); got != p.CoreActive {
		t.Errorf("busy C0 = %v", got)
	}
	if got := p.CoreWatts(C0, false, nominal); got != p.CoreIdle {
		t.Errorf("idle C0 = %v", got)
	}
	if got := p.CoreWatts(C6, false, nominal); got != p.CoreC6 {
		t.Errorf("C6 = %v", got)
	}
	// DVFS scaling: P3 at 0.55 speed should draw 0.55^3 of active power.
	p3 := p.PStates[3]
	want := p.CoreActive * math.Pow(0.55, 3)
	if got := p.CoreWatts(C0, true, p3); math.Abs(got-want) > 1e-9 {
		t.Errorf("P3 busy = %v, want %v", got, want)
	}
}

func TestPkgWatts(t *testing.T) {
	p := XeonE5_2680()
	if p.PkgWatts(PC0) != p.PkgPC0 || p.PkgWatts(PC2) != p.PkgPC2 || p.PkgWatts(PC6) != p.PkgPC6 {
		t.Error("PkgWatts mapping broken")
	}
}

func TestDefaultPStatesCubic(t *testing.T) {
	ps := DefaultPStates()
	if len(ps) != 4 || ps[0].Speed != 1.0 || ps[0].PowerScale != 1.0 {
		t.Fatalf("P-states = %+v", ps)
	}
	for _, s := range ps {
		want := s.Speed * s.Speed * s.Speed
		if math.Abs(s.PowerScale-want) > 1e-12 {
			t.Errorf("%s: PowerScale = %v, want cubic %v", s.Name, s.PowerScale, want)
		}
	}
}

func TestCisco2960Profile(t *testing.T) {
	p := Cisco2960_24()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Ports() != 24 {
		t.Errorf("Ports = %d", p.Ports())
	}
	// Paper: base power 14.7 W (chassis + line card, zero active ports).
	base := p.ChassisWatts + p.LineCardActiveW
	if math.Abs(base-14.7) > 1e-9 {
		t.Errorf("base = %v, want 14.7", base)
	}
	if p.PortActiveW != 0.23 {
		t.Errorf("per-port = %v, want 0.23", p.PortActiveW)
	}
	// All 24 ports active: 14.7 + 24*0.23 = 20.22 W.
	if math.Abs(p.MaxWatts()-20.22) > 1e-9 {
		t.Errorf("MaxWatts = %v, want 20.22", p.MaxWatts())
	}
}

func TestDataCenter10G(t *testing.T) {
	p := DataCenter10G(8)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Ports() != 8 {
		t.Errorf("Ports = %d", p.Ports())
	}
	// Zero/negative defaults to 48 ports.
	if DataCenter10G(0).Ports() != 48 {
		t.Error("default port count broken")
	}
}

func TestSwitchValidationRejects(t *testing.T) {
	p := Cisco2960_24()
	p.LineCards = 0
	if p.Validate() == nil {
		t.Error("zero line cards accepted")
	}

	p = Cisco2960_24()
	p.PortLPIW = p.PortActiveW + 1
	if p.Validate() == nil {
		t.Error("LPI > active accepted")
	}

	p = Cisco2960_24()
	p.LinkRatesBps = []float64{1e9, 1e8} // descending
	p.PortRateScale = []float64{1, 1}
	if p.Validate() == nil {
		t.Error("descending link rates accepted")
	}

	p = Cisco2960_24()
	p.LinkRatesBps = []float64{1e9}
	p.PortRateScale = []float64{1, 1}
	if p.Validate() == nil {
		t.Error("mismatched rate tables accepted")
	}
}

// Property: for any valid profile, deeper states never draw more power.
func TestDeeperStatesCheaperProperty(t *testing.T) {
	f := func(coreScale, pkgScale uint8) bool {
		p := XeonE5_2680()
		scale := 1 + float64(coreScale)/64
		p.CoreActive *= scale
		p.CoreIdle *= scale
		p.CoreC1 *= scale
		p.CoreC3 *= scale
		p.CoreC6 *= scale
		pscale := 1 + float64(pkgScale)/64
		p.PkgPC0 *= pscale
		p.PkgPC2 *= pscale
		p.PkgPC6 *= pscale
		if err := p.Validate(); err != nil {
			return false
		}
		ps := p.PStates[0]
		return p.CoreWatts(C0, false, ps) >= p.CoreWatts(C1, false, ps) &&
			p.CoreWatts(C1, false, ps) >= p.CoreWatts(C3, false, ps) &&
			p.CoreWatts(C3, false, ps) >= p.CoreWatts(C6, false, ps) &&
			p.PkgWatts(PC0) >= p.PkgWatts(PC2) && p.PkgWatts(PC2) >= p.PkgWatts(PC6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
