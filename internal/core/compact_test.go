package core

import (
	"testing"
)

// Above CompactStatsAbove the collector must degrade gracefully: the
// latency tally becomes a bounded reservoir with exact moments, and
// the per-server energy breakdown is omitted — while every aggregate
// stays identical to the full-fidelity run of the same seed.
func TestCompactStatsAboveThreshold(t *testing.T) {
	full := baseConfig()
	full.Servers = 8
	full.MaxJobs = 300

	compact := full
	compact.CompactStatsAbove = 4 // 8 servers > 4 → hyperscale mode

	dcF, err := Build(full)
	if err != nil {
		t.Fatal(err)
	}
	rF, err := dcF.Run()
	if err != nil {
		t.Fatal(err)
	}
	dcC, err := Build(compact)
	if err != nil {
		t.Fatal(err)
	}
	rC, err := dcC.Run()
	if err != nil {
		t.Fatal(err)
	}

	if rF.PerServer == nil || len(rF.PerServer) != 8 {
		t.Fatalf("full run lost its per-server breakdown: %v", rF.PerServer)
	}
	if rC.PerServer != nil {
		t.Fatalf("compact run kept a per-server breakdown of %d entries", len(rC.PerServer))
	}
	if rF.Latency.Bounded() {
		t.Fatalf("full run's latency tally is bounded")
	}
	if !rC.Latency.Bounded() {
		t.Fatalf("compact run's latency tally retains every sample")
	}

	// Same seed, same simulation: scalar aggregates and exact moments
	// must agree bit for bit; only percentile fidelity may differ.
	if rF.End != rC.End || rF.JobsCompleted != rC.JobsCompleted {
		t.Fatalf("compact collection changed the simulation: end %v vs %v, jobs %d vs %d",
			rF.End, rC.End, rF.JobsCompleted, rC.JobsCompleted)
	}
	if rF.ServerEnergyJ != rC.ServerEnergyJ || rF.CPUEnergyJ != rC.CPUEnergyJ {
		t.Fatalf("energy aggregates differ: %g vs %g", rF.ServerEnergyJ, rC.ServerEnergyJ)
	}
	if rF.Latency.Count() != rC.Latency.Count() || rF.Latency.Mean() != rC.Latency.Mean() {
		t.Fatalf("latency moments differ: n %d/%d mean %g/%g",
			rF.Latency.Count(), rC.Latency.Count(), rF.Latency.Mean(), rC.Latency.Mean())
	}
	for state, f := range rF.Residency {
		if rC.Residency[state] != f {
			t.Fatalf("residency[%s] = %g vs %g", state, rC.Residency[state], f)
		}
	}

	// Negative disables the degradation no matter the farm size.
	off := full
	off.CompactStatsAbove = -1
	dcO, err := Build(off)
	if err != nil {
		t.Fatal(err)
	}
	if dcO.compact {
		t.Fatalf("CompactStatsAbove=-1 still engaged compact mode")
	}
}
