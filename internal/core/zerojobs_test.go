package core

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"holdcsim/internal/network"
	"holdcsim/internal/power"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
	"holdcsim/internal/trace"
	"holdcsim/internal/workload"
)

// traceEmpty is a zero-arrival trace for instant-end runs.
var traceEmpty = trace.Trace{}

// assertFiniteFloats walks v recursively and fails on any NaN or ±Inf
// float64 — the contract for Results of degenerate runs: zero-job
// summaries must render as zeros, never as NaN.
func assertFiniteFloats(t *testing.T, v reflect.Value, path string) {
	t.Helper()
	switch v.Kind() {
	case reflect.Float64, reflect.Float32:
		f := v.Float()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			t.Errorf("%s = %g", path, f)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Type().Field(i).IsExported() {
				assertFiniteFloats(t, v.Field(i), path+"."+v.Type().Field(i).Name)
			}
		}
	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			assertFiniteFloats(t, v.Index(i), path+"[i]")
		}
	case reflect.Map:
		for _, k := range v.MapKeys() {
			assertFiniteFloats(t, v.MapIndex(k), path+"[k]")
		}
	case reflect.Pointer:
		if !v.IsNil() {
			assertFiniteFloats(t, v.Elem(), path)
		}
	}
}

// zeroJobConfig is a horizon-only run: a positive duration with a zero
// arrival rate, so not a single job is ever generated.
func zeroJobConfig() Config {
	return Config{
		Seed:         3,
		Servers:      2,
		ServerConfig: server.DefaultConfig(power.FourCoreServer()),
		Arrivals:     workload.Poisson{Rate: 0},
		Factory:      workload.SingleTask{Service: workload.WebSearchService()},
		Duration:     simtime.FromSeconds(1),
		SamplePower:  100 * simtime.Millisecond,
		Check:        true,
	}
}

// TestZeroJobRunResultsFinite: a run that completes zero jobs must
// produce fully finite results — latency summaries at zero, energy and
// residency intact — and pass every invariant (the conservation laws
// hold trivially but the accounting closure is still exercised).
func TestZeroJobRunResultsFinite(t *testing.T) {
	dc, err := Build(zeroJobConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := dc.Run()
	if err != nil {
		t.Fatalf("invariants on a zero-job run: %v", err)
	}
	if res.JobsGenerated != 0 || res.JobsCompleted != 0 {
		t.Fatalf("expected a zero-job run, got %d/%d", res.JobsCompleted, res.JobsGenerated)
	}
	assertFiniteFloats(t, reflect.ValueOf(res).Elem(), "Results")
	for _, f := range []float64{
		res.Latency.Mean(), res.Latency.StdDev(), res.Latency.Min(), res.Latency.Max(),
		res.Latency.Percentile(50), res.Latency.Percentile(99),
	} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			t.Errorf("empty latency tally leaked non-finite value %g", f)
		}
	}
	if s := res.String(); strings.Contains(s, "NaN") || strings.Contains(s, "Inf") {
		t.Errorf("summary renders non-finite values: %s", s)
	}
	// Energy must still accrue: an idle farm draws idle power.
	if res.ServerEnergyJ <= 0 {
		t.Errorf("idle farm accrued no energy: %g J", res.ServerEnergyJ)
	}
	if res.MeanServerPowerW <= 0 {
		t.Errorf("mean power %g W on a 1 s idle run", res.MeanServerPowerW)
	}
}

// TestZeroJobNetworkRun: the same degenerate horizon with a network
// attached — flow/packet conservation laws hold vacuously and network
// summaries stay finite.
func TestZeroJobNetworkRun(t *testing.T) {
	cfg := zeroJobConfig()
	cfg.Topology = topology.Star{Hosts: 4}
	cfg.NetworkConfig = network.DefaultConfig(power.Cisco2960_24())
	cfg.CommMode = CommFlow
	cfg.Placer = sched.LeastLoaded{}
	dc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dc.Run()
	if err != nil {
		t.Fatalf("invariants: %v", err)
	}
	assertFiniteFloats(t, reflect.ValueOf(res).Elem(), "Results")
	if res.NetworkEnergyJ <= 0 {
		t.Errorf("idle switch accrued no energy: %g J", res.NetworkEnergyJ)
	}
}

// TestEmptyTraceRun: an empty replay trace with no duration bound — the
// run ends as soon as the idle governors settle, a near-zero horizon
// that squeezes every division-by-duration edge. Everything must stay
// finite.
func TestEmptyTraceRun(t *testing.T) {
	cfg := zeroJobConfig()
	cfg.Duration = 0
	cfg.SamplePower = 0
	cfg.Arrivals = workload.NewTraceReplay(&traceEmpty)
	dc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dc.Run()
	if err != nil {
		t.Fatalf("invariants: %v", err)
	}
	// No workload: only the C-state governors' millisecond-scale idle
	// stepping can advance the clock.
	if res.End > simtime.Second {
		t.Fatalf("End = %v on an empty-trace run", res.End)
	}
	assertFiniteFloats(t, reflect.ValueOf(res).Elem(), "Results")
}

// TestPacketDropsConservation: packet mode with starved egress buffers
// must drop packets — and the invariant checker's packet-conservation
// law (delivered + dropped = sent) must hold through the drops, with
// every DAG still completing (drop accounting keeps jobs from
// deadlocking).
func TestPacketDropsConservation(t *testing.T) {
	ncfg := network.DefaultConfig(power.Cisco2960_24())
	ncfg.PortBufferBytes = 3000 // ~2 MTUs: forces drops under fan-in
	cfg := Config{
		Seed:          5,
		Servers:       8,
		ServerConfig:  server.DefaultConfig(power.FourCoreServer()),
		Topology:      topology.Star{Hosts: 8},
		NetworkConfig: ncfg,
		CommMode:      CommPacket,
		Placer:        sched.RoundRobin{},
		Arrivals:      workload.Poisson{Rate: 400},
		Factory: workload.TwoTier{
			AppService: workload.WebSearchService(),
			DBService:  workload.WebSearchService(),
			Bytes:      64 << 10,
		},
		MaxJobs: 200,
		Check:   true,
	}
	dc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dc.Run()
	if err != nil {
		t.Fatalf("invariants under packet drops: %v", err)
	}
	if res.NetStats.PacketsDropped == 0 {
		t.Fatal("buffer starvation produced no drops; the scenario no longer exercises the drop path")
	}
	if res.JobsCompleted != res.JobsGenerated {
		t.Fatalf("drops deadlocked DAGs: %d of %d jobs completed",
			res.JobsCompleted, res.JobsGenerated)
	}
	if got := res.NetStats.PacketsDelivered + res.NetStats.PacketsDropped; got != res.NetStats.PacketsSent {
		t.Fatalf("packet conservation: delivered+dropped = %d, sent = %d", got, res.NetStats.PacketsSent)
	}
}
