// Package core assembles HolDCSim's modules into a runnable data center
// (paper Fig. 1): it builds the server farm, lays the network over a
// topology, wires the global scheduler and workload generator, runs the
// event loop, and collects the runtime statistics the paper reports —
// job latency distributions, per-component energy, state residency, and
// power-over-time samples.
package core

import (
	"fmt"

	"holdcsim/internal/engine"
	"holdcsim/internal/fault"
	"holdcsim/internal/invariant"
	"holdcsim/internal/job"
	"holdcsim/internal/modelcov"
	"holdcsim/internal/network"
	"holdcsim/internal/rng"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/stats"
	"holdcsim/internal/topology"
	"holdcsim/internal/workload"
)

// CommMode selects how DAG edge data crosses the network.
type CommMode int

// Communication modes (paper Sec. III-B: packet-level and flow-based).
const (
	// CommNone makes transfers instantaneous (server-only studies).
	CommNone CommMode = iota
	// CommFlow uses fluid max-min fair flows.
	CommFlow
	// CommPacket uses MTU-sized store-and-forward packets.
	CommPacket
)

// String implements fmt.Stringer.
func (m CommMode) String() string {
	switch m {
	case CommNone:
		return "none"
	case CommFlow:
		return "flow"
	case CommPacket:
		return "packet"
	}
	return fmt.Sprintf("CommMode(%d)", int(m))
}

// MarshalText implements encoding.TextMarshaler (scenario-file codec).
func (m CommMode) MarshalText() ([]byte, error) {
	switch m {
	case CommNone, CommFlow, CommPacket:
		return []byte(m.String()), nil
	}
	return nil, fmt.Errorf("core: unknown comm mode %d", int(m))
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (m *CommMode) UnmarshalText(b []byte) error {
	switch string(b) {
	case "none":
		*m = CommNone
	case "flow":
		*m = CommFlow
	case "packet":
		*m = CommPacket
	default:
		return fmt.Errorf("core: unknown comm mode %q (want none, flow or packet)", b)
	}
	return nil
}

// Config describes one simulation experiment.
type Config struct {
	// Seed drives every random stream in the run.
	Seed uint64

	// Servers is the farm size; ServerConfig is the per-server template.
	// ConfigureServer optionally specializes individual servers
	// (heterogeneous farms, kind restrictions, per-pool timers).
	Servers         int
	ServerConfig    server.Config
	ConfigureServer func(i int, c *server.Config)

	// Topology is optional; when set, server i binds to host i and a
	// network is instantiated with NetworkConfig. CommMode selects the
	// transfer model for DAG edges.
	Topology      topology.Topology
	NetworkConfig network.Config
	CommMode      CommMode

	// Scheduling.
	Placer         sched.Placer
	Controller     sched.Controller
	UseGlobalQueue bool
	// PlacerFor, when set, constructs the placer once the network
	// exists — policies such as Server-Network-Aware (Sec. IV-D) need
	// the live Network to read switch sleep states. It overrides Placer.
	PlacerFor func(net *network.Network, hostOf sched.HostMapper) sched.Placer
	// OnDispatch, when set, observes every task handed to a server
	// (e.g. to inject request traffic toward the assigned host).
	OnDispatch func(srv *server.Server, t *job.Task)

	// Workload.
	Arrivals workload.ArrivalProcess
	Factory  workload.JobFactory
	MaxJobs  int64

	// Duration ends the run at a fixed virtual time; 0 runs until the
	// event queue drains (requires MaxJobs or a finite trace).
	Duration simtime.Time
	// Warmup excludes jobs arriving before this time from latency
	// statistics (energy accounting always covers the full run).
	Warmup simtime.Time
	// SamplePower, when positive, records total server and network power
	// at this interval (the paper's 1 Hz power logging).
	SamplePower simtime.Time

	// Faults, when non-nil, attaches the fault injector
	// (internal/fault): a deterministic, seed-derived timeline of server
	// crashes, link flaps, and switch deaths is scheduled through the
	// engine, with the spec's orphan policy governing stranded tasks. A
	// non-nil spec with zero events still attaches the (empty) injector
	// and ledger — the differential fault suite relies on that being
	// output-invisible. Nil leaves the fault machinery entirely unwired.
	Faults *fault.Spec

	// Check attaches a runtime invariant checker (internal/invariant):
	// conservation laws are verified at dispatch boundaries during the
	// run and in full at the end of Run, which then returns an error if
	// any law was violated. Checking is observation-only — a checked
	// run produces byte-identical results — and costs nothing when
	// false (the scheduler's subscriber lists stay empty).
	Check bool
	// CheckStationary additionally verifies the statistical Little's
	// law (L = λW within the 95% CI) at the end of the run. Enable only
	// for runs expected to be near steady state.
	CheckStationary bool

	// Cover, when non-nil, collects model-state coverage into the given
	// map: residency transitions, queue-depth buckets, drop sites,
	// placement and orphan branches, applied fault kinds and cascade
	// depths (internal/modelcov). Collection is observation-only — an
	// instrumented run produces byte-identical results — and costs
	// nothing when nil (each hook is a single nil check).
	Cover *modelcov.Map

	// CompactStatsAbove switches result collection to hyperscale mode
	// when the farm exceeds this many servers (default 65536; negative
	// disables): the job-latency tally degrades to a bounded reservoir
	// (exact moments, approximate percentiles) instead of retaining
	// every sample, and Results.PerServer is omitted. Farms at or below
	// the threshold — including every paper-scale preset — collect
	// exactly as before.
	CompactStatsAbove int
}

// DefaultCompactStatsAbove is the farm size beyond which Build degrades
// to bounded statistics, and the reservoir capacity it degrades to.
const DefaultCompactStatsAbove = 65536

// DataCenter is a built simulation ready to run.
type DataCenter struct {
	Eng     *engine.Engine
	Farm    *server.Farm // owns the servers; shared sleep planner
	Servers []*server.Server
	Net     *network.Network // nil without a topology
	Graph   *topology.Graph  // nil without a topology
	Sched   *sched.Scheduler
	Gen     *workload.Generator

	cfg      Config
	rng      *rng.Source
	hostOf   []topology.NodeID
	checker  *invariant.Checker // nil unless cfg.Check
	injector *fault.Injector    // nil unless cfg.Faults
	compact  bool               // hyperscale collection mode

	latency  *stats.Tally
	srvPower *stats.PowerSampler
	netPower *stats.PowerSampler
}

// Build validates the config and constructs the data center.
func Build(cfg Config) (*DataCenter, error) {
	if cfg.Servers <= 0 {
		return nil, fmt.Errorf("core: need at least one server")
	}
	if cfg.Arrivals == nil || cfg.Factory == nil {
		return nil, fmt.Errorf("core: workload arrivals and factory are required")
	}
	if cfg.Duration == 0 && cfg.MaxJobs == 0 {
		// A pure stochastic process with no horizon never terminates.
		if _, isTrace := cfg.Arrivals.(*workload.TraceReplay); !isTrace {
			return nil, fmt.Errorf("core: unbounded run (set Duration or MaxJobs)")
		}
	}
	eng := engine.New()
	master := rng.New(cfg.Seed)

	compactAbove := cfg.CompactStatsAbove
	if compactAbove == 0 {
		compactAbove = DefaultCompactStatsAbove
	}
	compact := compactAbove > 0 && cfg.Servers > compactAbove

	dc := &DataCenter{
		Eng:     eng,
		cfg:     cfg,
		rng:     master,
		compact: compact,
	}
	if compact {
		// Hyperscale: retaining one float64 per job would dominate
		// memory, so keep exact moments plus a bounded reservoir for
		// percentiles.
		dc.latency = stats.NewReservoirTally("job-latency-seconds",
			DefaultCompactStatsAbove, cfg.Seed)
	} else {
		dc.latency = stats.NewTally("job-latency-seconds")
	}

	// Server farm. The farm's shared sleep planner replaces one pending
	// timer event per idle server with a single heap entry, so a fully
	// asleep farm holds zero queued events regardless of size.
	dc.Farm = server.NewFarm(eng)
	dc.Servers = make([]*server.Server, cfg.Servers)
	for i := 0; i < cfg.Servers; i++ {
		sc := cfg.ServerConfig
		if sc.Profile == nil {
			return nil, fmt.Errorf("core: server config needs a power profile")
		}
		if cfg.ConfigureServer != nil {
			cfg.ConfigureServer(i, &sc)
		}
		srv, err := dc.Farm.Add(i, sc)
		if err != nil {
			return nil, fmt.Errorf("core: server %d: %w", i, err)
		}
		srv.SetCover(cfg.Cover)
		dc.Servers[i] = srv
	}

	// Network.
	var transfer sched.TransferFn
	if cfg.Topology != nil {
		g, err := cfg.Topology.Build()
		if err != nil {
			return nil, err
		}
		if err := g.Validate(); err != nil {
			return nil, err
		}
		hosts := g.Hosts()
		if len(hosts) < cfg.Servers {
			return nil, fmt.Errorf("core: topology %s has %d hosts for %d servers",
				cfg.Topology.Name(), len(hosts), cfg.Servers)
		}
		net, err := network.New(eng, g, cfg.NetworkConfig)
		if err != nil {
			return nil, err
		}
		dc.Graph = g
		dc.Net = net
		net.SetCover(cfg.Cover)
		dc.hostOf = hosts[:cfg.Servers]
		switch cfg.CommMode {
		case CommFlow:
			transfer = func(from, to int, bytes int64, done func()) {
				if err := net.TransferFlow(dc.hostOf[from], dc.hostOf[to], bytes, done); err != nil {
					panic(err)
				}
			}
		case CommPacket:
			transfer = func(from, to int, bytes int64, done func()) {
				if err := net.TransferPackets(dc.hostOf[from], dc.hostOf[to], bytes, done); err != nil {
					panic(err)
				}
			}
		}
	} else if cfg.CommMode != CommNone {
		return nil, fmt.Errorf("core: CommMode %v requires a topology", cfg.CommMode)
	}

	// Scheduler.
	placer := cfg.Placer
	if cfg.PlacerFor != nil {
		if dc.Net == nil {
			return nil, fmt.Errorf("core: PlacerFor requires a topology")
		}
		placer = cfg.PlacerFor(dc.Net, func(id int) topology.NodeID { return dc.hostOf[id] })
	}
	scfg := sched.Config{
		Placer:         placer,
		Controller:     cfg.Controller,
		UseGlobalQueue: cfg.UseGlobalQueue,
		Transfer:       transfer,
		OnDispatch:     cfg.OnDispatch,
	}
	if cfg.Faults != nil {
		scfg.Orphans = cfg.Faults.Orphans
	}
	s, err := sched.New(eng, dc.Servers, scfg)
	if err != nil {
		return nil, err
	}
	dc.Sched = s
	s.SetCover(cfg.Cover)
	s.OnJobDone(func(j *job.Job) {
		if j.ArriveAt >= cfg.Warmup {
			dc.latency.Add(j.Sojourn().Seconds())
		}
	})

	// Workload.
	dc.Gen = workload.NewGenerator(eng, master.Split("workload"), cfg.Arrivals,
		cfg.Factory, func(j *job.Job) { s.JobArrived(j) })
	dc.Gen.MaxJobs = cfg.MaxJobs
	if cfg.Duration > 0 {
		dc.Gen.Until = cfg.Duration
	}

	// Fault injection. The timeline derives from a dedicated rng stream
	// split off the master only when faults are configured, so fault-free
	// runs consume exactly the pre-fault draws.
	if cfg.Faults != nil {
		spec := *cfg.Faults
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		horizon := spec.HorizonSec
		if horizon <= 0 {
			horizon = cfg.Duration.Seconds()
		}
		if horizon <= 0 && !spec.Empty() {
			return nil, fmt.Errorf("core: fault spec needs a horizon (set Spec.HorizonSec or Duration)")
		}
		links, switches := 0, 0
		if dc.Net != nil {
			links = dc.Net.NumLinks()
			switches = len(dc.Net.Switches())
		}
		// Scope-resolution table: derived from the graph when there is
		// one, fixed server blocks otherwise.
		var topo *fault.Topo
		if dc.Graph != nil {
			topo = fault.NewTopo(topology.NewScopeMap(dc.Graph), cfg.Servers, links, switches)
		} else {
			topo = fault.FallbackTopo(cfg.Servers)
		}
		tl, err := spec.TimelineFor(master.Split("faults"), horizon, topo)
		if err != nil {
			return nil, err
		}
		// The cascade stream splits off only when cascades can fire, so
		// cascade-free specs consume exactly the pre-correlation draws.
		var cascade *rng.Source
		if spec.CascadeP > 0 && spec.CascadeDepth > 0 {
			cascade = master.Split("faults-cascade")
		}
		dc.injector = fault.AttachWith(eng, tl, s, dc.Servers, dc.Net,
			fault.AttachOpts{Topo: topo, Cascade: cascade, Spec: spec, Cover: cfg.Cover})
	}

	// Invariant checking. The farm's incremental aggregates keep the
	// checker's Finalize sums O(1), and the default ScanBudget bounds
	// every deep scan, so checking stays affordable at any farm size.
	if cfg.Check {
		opts := invariant.Options{Stationary: cfg.CheckStationary, Farm: dc.Farm}
		if dc.injector != nil {
			opts.LostJobsLedger = dc.injector.JobsLost
			opts.ScopeCheck = dc.injector.CheckScopes
		}
		dc.checker = invariant.Attach(eng, dc.Gen, s, dc.Servers, dc.Net, opts)
	}

	// Power sampling.
	if cfg.SamplePower > 0 {
		dc.srvPower = stats.NewPowerSampler(cfg.SamplePower)
		if dc.Net != nil {
			dc.netPower = stats.NewPowerSampler(cfg.SamplePower)
		}
		var tick func()
		tick = func() {
			dc.srvPower.Record(eng.Now(), dc.ServerPowerW())
			if dc.netPower != nil {
				dc.netPower.Record(eng.Now(), dc.Net.NetworkPowerW())
			}
			if cfg.Duration == 0 || eng.Now()+cfg.SamplePower <= cfg.Duration {
				eng.After(cfg.SamplePower, tick)
			}
		}
		eng.Schedule(0, tick)
	}
	return dc, nil
}

// RNG exposes the master random source (for callers extending a run).
func (dc *DataCenter) RNG() *rng.Source { return dc.rng }

// HostOf reports the topology node bound to a server (only with a
// topology).
func (dc *DataCenter) HostOf(serverID int) topology.NodeID { return dc.hostOf[serverID] }

// ServerPowerW reports the farm's instantaneous draw.
func (dc *DataCenter) ServerPowerW() float64 {
	sum := 0.0
	for _, s := range dc.Servers {
		sum += s.Power()
	}
	return sum
}

// Run executes the simulation and collects results. With Check enabled
// it finalizes the invariant checker; a violated law returns the
// results alongside a non-nil error describing every violation.
func (dc *DataCenter) Run() (*Results, error) {
	dc.Gen.Start()
	if dc.cfg.Duration > 0 {
		dc.Eng.RunUntil(dc.cfg.Duration)
	} else {
		dc.Eng.Run()
	}
	r := dc.Collect()
	if dc.checker != nil {
		dc.checker.Finalize(r.End)
		dc.checker.VerifyTotals(invariant.ReportedTotals{
			End:               r.End,
			JobsGenerated:     r.JobsGenerated,
			JobsCompleted:     r.JobsCompleted,
			JobsLost:          r.JobsLost,
			ServerEnergyJ:     r.ServerEnergyJ,
			CPUEnergyJ:        r.CPUEnergyJ,
			DRAMEnergyJ:       r.DRAMEnergyJ,
			PlatformEnergyJ:   r.PlatformEnergyJ,
			NetworkEnergyJ:    r.NetworkEnergyJ,
			MeanServerPowerW:  r.MeanServerPowerW,
			MeanNetworkPowerW: r.MeanNetworkPowerW,
			Residency:         r.Residency,
		})
		if err := dc.checker.Err(); err != nil {
			return r, err
		}
	}
	return r, nil
}

// Checker exposes the attached invariant checker (nil unless the
// config enabled Check).
func (dc *DataCenter) Checker() *invariant.Checker { return dc.checker }

// Injector exposes the attached fault injector (nil unless the config
// set Faults).
func (dc *DataCenter) Injector() *fault.Injector { return dc.injector }

// Collect snapshots results at the current virtual time. It may be
// called repeatedly (e.g. per sweep point when reusing a data center).
func (dc *DataCenter) Collect() *Results {
	end := dc.Eng.Now()
	r := &Results{
		End:           end,
		JobsGenerated: dc.Gen.Generated(),
		JobsCompleted: dc.Sched.JobsCompleted(),
		JobsLost:      dc.Sched.JobsLost(),
		TasksAborted:  dc.Sched.TasksAborted(),
		Latency:       dc.latency,
		Residency:     make(map[string]float64),
	}
	if !dc.compact {
		// Hyperscale mode drops the per-server breakdown: a million
		// ServerEnergy entries serve no report and dominate the results'
		// footprint. Aggregates below are collected either way.
		r.PerServer = make([]ServerEnergy, len(dc.Servers))
	}
	if dc.injector != nil {
		ledger := dc.injector.Ledger()
		r.Faults = &ledger
	}
	resTotals := make(map[string]float64)
	for i, s := range dc.Servers {
		cpu, dram, plat := s.CPUEnergyTo(end), s.DRAMEnergyTo(end), s.PlatformEnergyTo(end)
		if r.PerServer != nil {
			r.PerServer[i] = ServerEnergy{CPU: cpu, DRAM: dram, Platform: plat}
		}
		r.ServerEnergyJ += cpu + dram + plat
		r.CPUEnergyJ += cpu
		r.DRAMEnergyJ += dram
		r.PlatformEnergyJ += plat
		// AddFractionsTo performs the identical divisions FractionsTo
		// would, accumulating into resTotals without a per-server map.
		s.Residency().AddFractionsTo(end, resTotals)
		r.ServerWakeups += s.WakeCount()
	}
	for state, total := range resTotals {
		r.Residency[state] = total / float64(len(dc.Servers))
	}
	if sec := end.Seconds(); sec > 0 {
		r.MeanServerPowerW = r.ServerEnergyJ / sec
	}
	if dc.Net != nil {
		r.NetworkEnergyJ = dc.Net.NetworkEnergyTo(end)
		if sec := end.Seconds(); sec > 0 {
			r.MeanNetworkPowerW = r.NetworkEnergyJ / sec
		}
		r.NetStats = dc.Net.Stats()
		for _, sw := range dc.Net.Switches() {
			r.SwitchWakeups += sw.WakeCount()
		}
	}
	if dc.srvPower != nil {
		r.ServerPowerSeries = dc.srvPower
	}
	if dc.netPower != nil {
		r.NetworkPowerSeries = dc.netPower
	}
	return r
}

// ServerEnergy is one server's per-component energy (Fig. 9's bars).
type ServerEnergy struct {
	CPU, DRAM, Platform float64 // joules
}

// Total reports the server's total energy.
func (e ServerEnergy) Total() float64 { return e.CPU + e.DRAM + e.Platform }

// Results aggregates a run's outputs.
type Results struct {
	End           simtime.Time
	JobsGenerated int64
	JobsCompleted int64
	// JobsLost counts jobs retracted by failures (server crash under a
	// drop policy, or arrival with no alive server). TasksAborted counts
	// dispatched task incarnations retracted before finishing.
	JobsLost     int64
	TasksAborted int64
	// Faults snapshots the injector's ledger (nil without fault config).
	Faults *fault.Ledger

	// Latency holds per-job sojourn times in seconds (post-warmup).
	Latency *stats.Tally

	ServerEnergyJ     float64
	CPUEnergyJ        float64
	DRAMEnergyJ       float64
	PlatformEnergyJ   float64
	NetworkEnergyJ    float64
	MeanServerPowerW  float64
	MeanNetworkPowerW float64

	PerServer []ServerEnergy

	// Residency maps state label -> mean fraction across servers
	// (Fig. 8's stacked bars).
	Residency map[string]float64

	ServerWakeups int64
	SwitchWakeups int64

	NetStats network.Stats

	ServerPowerSeries  *stats.PowerSampler
	NetworkPowerSeries *stats.PowerSampler
}

// String renders a one-line summary. The lost-jobs figure appears only
// when failures actually retracted work, so fault-free summaries render
// exactly as before.
func (r *Results) String() string {
	lost := ""
	if r.JobsLost > 0 {
		lost = fmt.Sprintf(" lost=%d", r.JobsLost)
	}
	return fmt.Sprintf("jobs=%d/%d%s mean=%.4gms p95=%.4gms p99=%.4gms energy=%.4gkJ meanPower=%.4gW",
		r.JobsCompleted, r.JobsGenerated, lost,
		r.Latency.Mean()*1e3, r.Latency.Percentile(95)*1e3, r.Latency.Percentile(99)*1e3,
		r.ServerEnergyJ/1e3, r.MeanServerPowerW)
}
