package core

import (
	"math"
	"testing"
	"testing/quick"

	"holdcsim/internal/network"
	"holdcsim/internal/power"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
	"holdcsim/internal/workload"
)

func baseConfig() Config {
	return Config{
		Seed:         1,
		Servers:      4,
		ServerConfig: server.DefaultConfig(power.FourCoreServer()),
		Placer:       sched.LeastLoaded{},
		Arrivals:     workload.Poisson{Rate: 400},
		Factory:      workload.SingleTask{Service: workload.WebSearchService()},
		MaxJobs:      500,
	}
}

func TestBuildValidation(t *testing.T) {
	cfg := baseConfig()
	cfg.Servers = 0
	if _, err := Build(cfg); err == nil {
		t.Error("zero servers accepted")
	}

	cfg = baseConfig()
	cfg.Arrivals = nil
	if _, err := Build(cfg); err == nil {
		t.Error("missing arrivals accepted")
	}

	cfg = baseConfig()
	cfg.MaxJobs = 0
	if _, err := Build(cfg); err == nil {
		t.Error("unbounded run accepted")
	}

	cfg = baseConfig()
	cfg.ServerConfig.Profile = nil
	if _, err := Build(cfg); err == nil {
		t.Error("missing profile accepted")
	}

	cfg = baseConfig()
	cfg.CommMode = CommFlow // no topology
	if _, err := Build(cfg); err == nil {
		t.Error("comm mode without topology accepted")
	}

	cfg = baseConfig()
	cfg.Servers = 50
	cfg.Topology = topology.Star{Hosts: 10} // too few hosts
	cfg.NetworkConfig = network.DefaultConfig(power.Cisco2960_24())
	if _, err := Build(cfg); err == nil {
		t.Error("host shortage accepted")
	}
}

func TestEndToEndSingleTask(t *testing.T) {
	dc, err := Build(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := dc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.JobsCompleted != 500 || r.JobsGenerated != 500 {
		t.Fatalf("jobs = %d/%d", r.JobsCompleted, r.JobsGenerated)
	}
	// At rho = lambda*E[S]/(n*cores) = 400*0.005/16 = 0.125, latencies
	// should sit near the 5ms mean service time.
	mean := r.Latency.Mean()
	if mean < 0.004 || mean > 0.012 {
		t.Errorf("mean latency = %v s", mean)
	}
	if r.ServerEnergyJ <= 0 || r.MeanServerPowerW <= 0 {
		t.Error("no energy recorded")
	}
	comp := r.CPUEnergyJ + r.DRAMEnergyJ + r.PlatformEnergyJ
	if math.Abs(comp-r.ServerEnergyJ) > 1e-6 {
		t.Errorf("component sum %v != total %v", comp, r.ServerEnergyJ)
	}
	if len(r.PerServer) != 4 {
		t.Errorf("per-server results = %d", len(r.PerServer))
	}
	var perSum float64
	for _, e := range r.PerServer {
		perSum += e.Total()
	}
	if math.Abs(perSum-r.ServerEnergyJ) > 1e-6 {
		t.Errorf("per-server sum %v != total %v", perSum, r.ServerEnergyJ)
	}
	if r.String() == "" {
		t.Error("empty summary")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() *Results {
		dc, err := Build(baseConfig())
		if err != nil {
			t.Fatal(err)
		}
		r, err := dc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Latency.Mean() != b.Latency.Mean() ||
		a.ServerEnergyJ != b.ServerEnergyJ ||
		a.End != b.End {
		t.Error("same seed produced different results")
	}
	cfg := baseConfig()
	cfg.Seed = 2
	dc, _ := Build(cfg)
	c, _ := dc.Run()
	if c.Latency.Mean() == a.Latency.Mean() {
		t.Error("different seeds produced identical latency (suspicious)")
	}
}

func TestDurationBoundedRun(t *testing.T) {
	cfg := baseConfig()
	cfg.MaxJobs = 0
	cfg.Duration = 2 * simtime.Second
	cfg.SamplePower = 100 * simtime.Millisecond
	dc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := dc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.End != 2*simtime.Second {
		t.Errorf("end = %v", r.End)
	}
	if r.JobsCompleted < 500 {
		t.Errorf("completed = %d, want ~800", r.JobsCompleted)
	}
	if r.ServerPowerSeries == nil || r.ServerPowerSeries.Len() < 15 {
		t.Error("power series missing or too short")
	}
}

func TestWarmupExcludesEarlyJobs(t *testing.T) {
	cfg := baseConfig()
	cfg.Warmup = simtime.Second
	cfg.MaxJobs = 0
	cfg.Duration = 2 * simtime.Second
	dc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := dc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Latency.Count() >= r.JobsCompleted {
		t.Errorf("warmup did not exclude jobs: %d tallied of %d", r.Latency.Count(), r.JobsCompleted)
	}
	if r.Latency.Count() == 0 {
		t.Error("no post-warmup jobs tallied")
	}
}

func TestWithTopologyFlowMode(t *testing.T) {
	cfg := baseConfig()
	cfg.Servers = 16
	cfg.Topology = topology.FatTree{K: 4, RateBps: 10e9}
	cfg.NetworkConfig = network.DefaultConfig(power.DataCenter10G(8))
	cfg.CommMode = CommFlow
	cfg.Factory = workload.TwoTier{
		AppService: workload.WebSearchService(),
		DBService:  workload.WebSearchService(),
		Bytes:      1 << 20,
	}
	cfg.MaxJobs = 200
	dc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := dc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.JobsCompleted != 200 {
		t.Fatalf("jobs = %d", r.JobsCompleted)
	}
	if r.NetworkEnergyJ <= 0 {
		t.Error("no network energy")
	}
	// Flows only occur for cross-server edges; with 16 servers and
	// least-loaded placement, most app->db pairs split.
	if r.NetStats.FlowsCompleted == 0 {
		t.Error("no flows completed")
	}
	if r.NetStats.FlowsStarted != r.NetStats.FlowsCompleted {
		t.Errorf("flows %d started vs %d completed",
			r.NetStats.FlowsStarted, r.NetStats.FlowsCompleted)
	}
}

func TestWithTopologyPacketMode(t *testing.T) {
	cfg := baseConfig()
	cfg.Servers = 8
	cfg.Topology = topology.Star{Hosts: 8, RateBps: 1e9}
	cfg.NetworkConfig = network.DefaultConfig(power.Cisco2960_24())
	cfg.CommMode = CommPacket
	cfg.Factory = workload.TwoTier{
		AppService: workload.WebSearchService(),
		DBService:  workload.WebSearchService(),
		Bytes:      15000, // 10 packets
	}
	cfg.MaxJobs = 100
	dc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := dc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.JobsCompleted != 100 {
		t.Fatalf("jobs = %d", r.JobsCompleted)
	}
	if r.NetStats.PacketsDelivered == 0 {
		t.Error("no packets delivered")
	}
}

func TestResidencyFractionsSumToOne(t *testing.T) {
	cfg := baseConfig()
	cfg.ServerConfig.DelayTimerEnabled = true
	cfg.ServerConfig.DelayTimer = 50 * simtime.Millisecond
	cfg.MaxJobs = 0
	cfg.Duration = 60 * simtime.Second
	// Sparse arrivals leave multi-second gaps so suspend cycles (2.5s
	// entry on this profile) complete between jobs.
	cfg.Arrivals = workload.Poisson{Rate: 1}
	dc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := dc.Run()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, f := range r.Residency {
		sum += f
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("residency fractions sum to %v: %v", sum, r.Residency)
	}
	// With a 50ms delay timer at low load, servers must spend time in
	// system sleep.
	if r.Residency[server.StateSysSleep] <= 0 {
		t.Errorf("no SysSleep residency: %v", r.Residency)
	}
	if r.ServerWakeups == 0 {
		t.Error("no server wakeups recorded")
	}
}

func TestHeterogeneousConfigureServer(t *testing.T) {
	cfg := baseConfig()
	cfg.ConfigureServer = func(i int, c *server.Config) {
		if i == 0 {
			c.CoreSpeeds = []float64{2, 2, 2, 2}
		}
	}
	dc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dc.Servers[0].Core(0).Speed() != 2 || dc.Servers[1].Core(0).Speed() != 1 {
		t.Error("ConfigureServer not applied")
	}
}

// Property: offered load below capacity implies all jobs complete and
// mean latency is finite and at least the mean service time.
func TestStabilityProperty(t *testing.T) {
	f := func(seed uint64, rhoPct uint8) bool {
		rho := 0.05 + float64(rhoPct%60)/100 // 5%..64%
		cfg := baseConfig()
		cfg.Seed = seed
		cfg.Arrivals = workload.Poisson{
			Rate: workload.UtilizationRate(rho, 4, 4, 0.005)}
		cfg.MaxJobs = 300
		dc, err := Build(cfg)
		if err != nil {
			return false
		}
		r, err := dc.Run()
		if err != nil {
			return false
		}
		return r.JobsCompleted == 300 && r.Latency.Mean() >= 0.004 &&
			!math.IsInf(r.Latency.Mean(), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestCommModeString(t *testing.T) {
	if CommNone.String() != "none" || CommFlow.String() != "flow" ||
		CommPacket.String() != "packet" || CommMode(9).String() != "CommMode(9)" {
		t.Error("CommMode.String broken")
	}
}

// TestCommModeText pins the scenario-codec text forms: marshal/
// unmarshal round-trip for every mode, errors (not junk bytes) for
// unknown values and names.
func TestCommModeText(t *testing.T) {
	for _, m := range []CommMode{CommNone, CommFlow, CommPacket} {
		b, err := m.MarshalText()
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		var back CommMode = 99
		if err := back.UnmarshalText(b); err != nil || back != m {
			t.Errorf("round trip %v -> %q -> %v (%v)", m, b, back, err)
		}
	}
	if _, err := CommMode(9).MarshalText(); err == nil {
		t.Error("unknown mode marshaled")
	}
	var m CommMode
	if err := m.UnmarshalText([]byte("fluid")); err == nil {
		t.Error("unknown name unmarshaled")
	}
}
