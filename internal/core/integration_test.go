package core

import (
	"math"
	"testing"

	"holdcsim/internal/job"
	"holdcsim/internal/network"
	"holdcsim/internal/power"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
	"holdcsim/internal/workload"
)

func TestGlobalQueueThroughBuild(t *testing.T) {
	cfg := baseConfig()
	cfg.UseGlobalQueue = true
	cfg.Arrivals = workload.Poisson{Rate: 4000} // oversubscribe 16 slots
	cfg.Factory = workload.SingleTask{Service: workload.WebSearchService()}
	cfg.MaxJobs = 2000
	dc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Mid-run, the global queue must hold work while servers stay
	// local-queue-free.
	dc.Gen.Start()
	dc.Eng.RunUntil(100 * simtime.Millisecond)
	anyLocal := 0
	for _, srv := range dc.Servers {
		anyLocal += srv.QueueLen()
	}
	if anyLocal != 0 {
		t.Errorf("local queues hold %d tasks in global-queue mode", anyLocal)
	}
	dc.Eng.Run()
	res := dc.Collect()
	if res.JobsCompleted != 2000 {
		t.Errorf("jobs = %d", res.JobsCompleted)
	}
}

func TestMultiSocketFarmThroughBuild(t *testing.T) {
	cfg := baseConfig()
	cfg.ServerConfig = server.DefaultConfig(power.DualSocketXeon())
	cfg.Arrivals = workload.Poisson{Rate: 100}
	cfg.MaxJobs = 500
	dc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dc.Servers[0].Cores() != 20 {
		t.Fatalf("cores = %d", dc.Servers[0].Cores())
	}
	res, err := dc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted != 500 {
		t.Errorf("jobs = %d", res.JobsCompleted)
	}
	// At this trickle the second socket of each server should have
	// parked for most of the run: per-server CPU energy must be well
	// under the both-sockets-idle bound.
	bothIdle := power.DualSocketXeon().IdleWatts() * res.End.Seconds()
	if res.PerServer[0].Total() >= bothIdle {
		t.Errorf("per-server energy %v >= Active-Idle bound %v (no socket parking?)",
			res.PerServer[0].Total(), bothIdle)
	}
}

func TestPlacerForRequiresTopology(t *testing.T) {
	cfg := baseConfig()
	cfg.PlacerFor = func(net *network.Network, hostOf sched.HostMapper) sched.Placer {
		return sched.LeastLoaded{}
	}
	if _, err := Build(cfg); err == nil {
		t.Error("PlacerFor without topology accepted")
	}
}

func TestPowerSamplerCadence(t *testing.T) {
	cfg := baseConfig()
	cfg.MaxJobs = 0
	cfg.Duration = simtime.Second
	cfg.SamplePower = 100 * simtime.Millisecond
	dc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dc.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Samples at 0, 100ms, ..., 1000ms inclusive = 11.
	if res.ServerPowerSeries.Len() != 11 {
		t.Errorf("samples = %d, want 11", res.ServerPowerSeries.Len())
	}
	for i, at := range res.ServerPowerSeries.Times {
		want := simtime.Time(i) * 100 * simtime.Millisecond
		if at != want {
			t.Errorf("sample %d at %v, want %v", i, at, want)
		}
	}
	for _, w := range res.ServerPowerSeries.Values {
		if w <= 0 {
			t.Error("non-positive power sample")
		}
	}
}

func TestOnDispatchThroughBuild(t *testing.T) {
	count := 0
	cfg := baseConfig()
	cfg.MaxJobs = 50
	cfg.OnDispatch = func(srv *server.Server, tk *job.Task) {
		if srv == nil || tk == nil {
			t.Error("nil dispatch arguments")
		}
		count++
	}
	dc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dc.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Errorf("dispatch hook fired %d times, want 50", count)
	}
}

func TestStarTopologyPacketEnergy(t *testing.T) {
	cfg := baseConfig()
	cfg.Servers = 8
	cfg.Topology = topology.Star{Hosts: 8, RateBps: 1e9}
	cfg.NetworkConfig = network.DefaultConfig(power.Cisco2960_24())
	cfg.CommMode = CommPacket
	cfg.Factory = workload.TwoTier{
		AppService: workload.WebSearchService(),
		DBService:  workload.WebSearchService(),
		Bytes:      6000,
	}
	cfg.MaxJobs = 300
	dc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dc.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Network energy must sit inside the switch's physical power band:
	// above the all-LPI floor, below the all-active ceiling.
	lo := (14.7 + 8*0.03) * res.End.Seconds()
	hi := (14.7 + 8*0.23) * res.End.Seconds() * 1.01
	if res.NetworkEnergyJ < lo || res.NetworkEnergyJ > hi {
		t.Errorf("network energy %v outside [%v, %v]", res.NetworkEnergyJ, lo, hi)
	}
	if math.IsNaN(res.NetworkEnergyJ) {
		t.Error("NaN network energy")
	}
}
