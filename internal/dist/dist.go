// Package dist provides the service-time and arrival-size distributions
// used by workload factories (paper Sec. III-D): memoryless exponential
// service, uniform and deterministic profiles, heavy-tailed log-normal
// and Pareto sizes, and the 2-state Markov-Modulated Poisson Process
// behind the burstiness sweeps.
//
// Every distribution draws from an explicit *rng.Source so experiments
// stay deterministic and label-splittable.
package dist

import (
	"fmt"
	"math"

	"holdcsim/internal/rng"
)

// Sampler draws one value (a service time in seconds, a transfer size in
// bytes, ...) from a distribution.
type Sampler interface {
	Sample(r *rng.Source) float64
	// Mean reports the distribution's expected value, used by the
	// experiments to convert utilization targets into arrival rates.
	Mean() float64
	String() string
}

// Exponential is memoryless with the given mean.
type Exponential struct {
	MeanValue float64
}

// Sample implements Sampler.
func (e Exponential) Sample(r *rng.Source) float64 { return r.Exp(e.MeanValue) }

// Mean implements Sampler.
func (e Exponential) Mean() float64 { return e.MeanValue }

func (e Exponential) String() string { return fmt.Sprintf("exp(mean=%g)", e.MeanValue) }

// Uniform draws from [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample implements Sampler.
func (u Uniform) Sample(r *rng.Source) float64 { return r.Uniform(u.Lo, u.Hi) }

// Mean implements Sampler.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("uniform[%g,%g)", u.Lo, u.Hi) }

// Deterministic always returns Value.
type Deterministic struct {
	Value float64
}

// Sample implements Sampler.
func (d Deterministic) Sample(r *rng.Source) float64 { return d.Value }

// Mean implements Sampler.
func (d Deterministic) Mean() float64 { return d.Value }

func (d Deterministic) String() string { return fmt.Sprintf("det(%g)", d.Value) }

// LogNormal is parameterized by the mean Mu and deviation Sigma of the
// underlying normal.
type LogNormal struct {
	Mu, Sigma float64
}

// Sample implements Sampler.
func (l LogNormal) Sample(r *rng.Source) float64 { return r.LogNormal(l.Mu, l.Sigma) }

// Mean implements Sampler.
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

func (l LogNormal) String() string { return fmt.Sprintf("lognormal(μ=%g,σ=%g)", l.Mu, l.Sigma) }

// Pareto is heavy-tailed with minimum Xm and shape Alpha.
type Pareto struct {
	Xm, Alpha float64
}

// Sample implements Sampler.
func (p Pareto) Sample(r *rng.Source) float64 { return r.Pareto(p.Xm, p.Alpha) }

// Mean implements Sampler.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

func (p Pareto) String() string { return fmt.Sprintf("pareto(xm=%g,α=%g)", p.Xm, p.Alpha) }

// Weibull has scale λ (Scale) and shape k (Shape). Shape < 1 models
// infant-mortality lifetimes, shape 1 reduces to the exponential, and
// shape > 1 models wear-out — the three regimes MTTF renewal processes
// draw component lifetimes from. Sampling is by inverse CDF so one
// uniform draw per sample keeps replay arithmetic stable.
type Weibull struct {
	Scale, Shape float64
}

// WeibullFromMean returns a Weibull with the given shape whose mean is
// mean (scale = mean / Γ(1+1/k)). Shape <= 0 is treated as shape 1
// (exponential), the renewal spec's "unset" encoding.
func WeibullFromMean(mean, shape float64) Weibull {
	if shape <= 0 {
		shape = 1
	}
	return Weibull{Scale: mean / math.Gamma(1+1/shape), Shape: shape}
}

// Sample implements Sampler.
func (w Weibull) Sample(r *rng.Source) float64 {
	// Inverse CDF: λ·(-ln(1-U))^(1/k). 1-U ∈ (0,1] keeps the log finite.
	return w.Scale * math.Pow(-math.Log(1-r.Float64()), 1/w.Shape)
}

// Mean implements Sampler.
func (w Weibull) Mean() float64 { return w.Scale * math.Gamma(1+1/w.Shape) }

func (w Weibull) String() string { return fmt.Sprintf("weibull(λ=%g,k=%g)", w.Scale, w.Shape) }

// MMPP2 is a 2-state Markov-Modulated Poisson Process (paper Sec. III-D):
// arrivals are Poisson with rate LambdaH during exponentially distributed
// bursts of mean MeanBurst seconds, and rate LambdaL during quiet periods
// of mean MeanQuiet seconds. The burstiness ratio Ra = LambdaH/LambdaL
// and duty cycle MeanBurst/(MeanBurst+MeanQuiet) are the two knobs the
// paper sweeps.
type MMPP2 struct {
	LambdaH, LambdaL     float64
	MeanBurst, MeanQuiet float64

	high    bool
	started bool
	sojourn float64 // virtual seconds left in the current state
}

// NewMMPP2 validates and returns a 2-state MMPP starting in the
// high-rate (burst) state.
func NewMMPP2(lambdaH, lambdaL, meanBurst, meanQuiet float64) (*MMPP2, error) {
	if lambdaH <= 0 || lambdaL <= 0 {
		return nil, fmt.Errorf("dist: MMPP2 rates must be positive (λH=%g, λL=%g)", lambdaH, lambdaL)
	}
	if lambdaH < lambdaL {
		return nil, fmt.Errorf("dist: MMPP2 burst rate λH=%g below quiet rate λL=%g", lambdaH, lambdaL)
	}
	if meanBurst <= 0 || meanQuiet <= 0 {
		return nil, fmt.Errorf("dist: MMPP2 state durations must be positive (burst=%g, quiet=%g)", meanBurst, meanQuiet)
	}
	return &MMPP2{LambdaH: lambdaH, LambdaL: lambdaL, MeanBurst: meanBurst, MeanQuiet: meanQuiet}, nil
}

// RateRatio reports the burstiness ratio Ra = λH/λL.
func (m *MMPP2) RateRatio() float64 { return m.LambdaH / m.LambdaL }

// BurstyFraction reports the fraction of time spent in the burst state.
func (m *MMPP2) BurstyFraction() float64 { return m.MeanBurst / (m.MeanBurst + m.MeanQuiet) }

// MeanRate reports the long-run average arrival rate.
func (m *MMPP2) MeanRate() float64 {
	total := m.MeanBurst + m.MeanQuiet
	return (m.LambdaH*m.MeanBurst + m.LambdaL*m.MeanQuiet) / total
}

// Next returns the interval in seconds until the next arrival, advancing
// the modulating chain through any state flips that occur in between.
func (m *MMPP2) Next(r *rng.Source) float64 {
	if !m.started {
		m.started = true
		m.high = true
		m.sojourn = r.Exp(m.MeanBurst)
	}
	var elapsed float64
	for {
		rate := m.LambdaL
		if m.high {
			rate = m.LambdaH
		}
		gap := r.Exp(1 / rate)
		if gap <= m.sojourn {
			m.sojourn -= gap
			return elapsed + gap
		}
		// The state flips before the candidate arrival; the memoryless
		// property lets us redraw the arrival gap in the new state.
		elapsed += m.sojourn
		m.high = !m.high
		if m.high {
			m.sojourn = r.Exp(m.MeanBurst)
		} else {
			m.sojourn = r.Exp(m.MeanQuiet)
		}
	}
}

func (m *MMPP2) String() string {
	return fmt.Sprintf("mmpp2(λH=%g,λL=%g,burst=%gs,quiet=%gs)", m.LambdaH, m.LambdaL, m.MeanBurst, m.MeanQuiet)
}
