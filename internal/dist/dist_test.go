package dist

import (
	"math"
	"testing"

	"holdcsim/internal/rng"
)

func TestWeibullFromMean(t *testing.T) {
	// Shape 1 is the exponential: scale == mean.
	w := WeibullFromMean(2, 1)
	if math.Abs(w.Scale-2) > 1e-12 || w.Shape != 1 {
		t.Errorf("WeibullFromMean(2, 1) = %+v, want scale 2 shape 1", w)
	}
	if got := w.Mean(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %g, want 2", got)
	}
	// Nonpositive shape falls back to exponential.
	if w := WeibullFromMean(3, 0); w.Shape != 1 || math.Abs(w.Mean()-3) > 1e-12 {
		t.Errorf("WeibullFromMean(3, 0) = %+v, want exponential mean 3", w)
	}
	if w := WeibullFromMean(3, -2); w.Shape != 1 {
		t.Errorf("WeibullFromMean(3, -2).Shape = %g, want 1", w.Shape)
	}
	// Mean inverts the Gamma scaling for any shape.
	for _, k := range []float64{0.7, 1.4, 2.5} {
		w := WeibullFromMean(5, k)
		if got := w.Mean(); math.Abs(got-5) > 1e-9 {
			t.Errorf("WeibullFromMean(5, %g).Mean() = %g, want 5", k, got)
		}
	}
}

func TestWeibullSampleMean(t *testing.T) {
	r := rng.New(42)
	for _, k := range []float64{1, 1.8} {
		w := WeibullFromMean(2, k)
		const n = 20000
		var sum float64
		for i := 0; i < n; i++ {
			x := w.Sample(r)
			if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("shape %g: sample %g out of range", k, x)
			}
			sum += x
		}
		if got := sum / n; math.Abs(got-2) > 0.1 {
			t.Errorf("shape %g: sample mean = %g, want ~2", k, got)
		}
	}
}

func TestWeibullDeterministic(t *testing.T) {
	w := WeibullFromMean(1.5, 2)
	a, b := rng.New(7), rng.New(7)
	for i := 0; i < 100; i++ {
		if x, y := w.Sample(a), w.Sample(b); x != y {
			t.Fatalf("draw %d: %g != %g from identical streams", i, x, y)
		}
	}
}

func TestWeibullString(t *testing.T) {
	w := Weibull{Scale: 2, Shape: 1.5}
	if got := w.String(); got != "weibull(λ=2,k=1.5)" {
		t.Errorf("String = %q", got)
	}
}
