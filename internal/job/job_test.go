package job

import (
	"testing"
	"testing/quick"

	"holdcsim/internal/rng"
	"holdcsim/internal/simtime"
)

func TestSingle(t *testing.T) {
	j := Single(1, 100, 5*simtime.Millisecond)
	if len(j.Tasks) != 1 {
		t.Fatalf("tasks = %d", len(j.Tasks))
	}
	tk := j.Tasks[0]
	if tk.State != TaskReady || !tk.IsRoot() || !tk.IsSink() {
		t.Errorf("root task state = %v", tk.State)
	}
	if tk.ReadyAt != 100 {
		t.Errorf("ReadyAt = %v", tk.ReadyAt)
	}
	if done := j.TaskFinished(tk, 200); !done {
		t.Error("single-task job not done after task finish")
	}
	if j.Sojourn() != 100 {
		t.Errorf("Sojourn = %v", j.Sojourn())
	}
}

func TestTwoTierDependency(t *testing.T) {
	j := TwoTier(2, 0, 3*simtime.Millisecond, 7*simtime.Millisecond, 4096)
	app, db := j.Tasks[0], j.Tasks[1]
	if app.Kind != "app" || db.Kind != "db" {
		t.Errorf("kinds = %q, %q", app.Kind, db.Kind)
	}
	if app.State != TaskReady {
		t.Errorf("app state = %v", app.State)
	}
	if db.State != TaskBlocked || db.PendingDeps() != 1 {
		t.Errorf("db state = %v deps = %d", db.State, db.PendingDeps())
	}
	if done := j.TaskFinished(app, 50); done {
		t.Error("job done before db ran")
	}
	if ready := db.SatisfyDep(); !ready {
		t.Error("db should be ready after dep satisfied")
	}
	if done := j.TaskFinished(db, 80); !done {
		t.Error("job should be done")
	}
	if j.TotalWork() != 10*simtime.Millisecond {
		t.Errorf("TotalWork = %v", j.TotalWork())
	}
}

func TestChainStructure(t *testing.T) {
	j := Chain(3, 0, 5, simtime.Millisecond, 100)
	if len(j.Tasks) != 5 {
		t.Fatalf("tasks = %d", len(j.Tasks))
	}
	ready := j.ReadyTasks()
	if len(ready) != 1 || ready[0] != j.Tasks[0] {
		t.Errorf("ready = %v", ready)
	}
	for i, tk := range j.Tasks {
		wantIn := 1
		if i == 0 {
			wantIn = 0
		}
		wantOut := 1
		if i == 4 {
			wantOut = 0
		}
		if len(tk.In) != wantIn || len(tk.Out) != wantOut {
			t.Errorf("task %d in/out = %d/%d", i, len(tk.In), len(tk.Out))
		}
	}
}

func TestScatterGather(t *testing.T) {
	j := ScatterGather(4, 0, 8, simtime.Millisecond, 2*simtime.Millisecond, simtime.Millisecond, 1024)
	if len(j.Tasks) != 10 {
		t.Fatalf("tasks = %d", len(j.Tasks))
	}
	root, gather := j.Tasks[0], j.Tasks[1]
	if len(root.Out) != 8 {
		t.Errorf("root fan-out = %d", len(root.Out))
	}
	if len(gather.In) != 8 || gather.PendingDeps() != 8 {
		t.Errorf("gather fan-in = %d deps = %d", len(gather.In), gather.PendingDeps())
	}
	order, err := j.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != root || order[len(order)-1] != gather {
		t.Error("topo order should start at root and end at gather")
	}
}

func TestCycleDetection(t *testing.T) {
	j := New(5, 0)
	a := j.AddTask(simtime.Millisecond, "")
	b := j.AddTask(simtime.Millisecond, "")
	j.Link(a, b, 0)
	j.Link(b, a, 0)
	if err := j.Seal(); err == nil {
		t.Error("cyclic DAG sealed without error")
	}
}

func TestEmptyJobSealFails(t *testing.T) {
	j := New(6, 0)
	if err := j.Seal(); err == nil {
		t.Error("empty job sealed without error")
	}
}

func TestSelfLinkPanics(t *testing.T) {
	j := New(7, 0)
	a := j.AddTask(simtime.Millisecond, "")
	defer func() {
		if recover() == nil {
			t.Error("self link did not panic")
		}
	}()
	j.Link(a, a, 0)
}

func TestCrossJobLinkPanics(t *testing.T) {
	j1, j2 := New(8, 0), New(9, 0)
	a := j1.AddTask(simtime.Millisecond, "")
	b := j2.AddTask(simtime.Millisecond, "")
	defer func() {
		if recover() == nil {
			t.Error("cross-job link did not panic")
		}
	}()
	j1.Link(a, b, 0)
}

func TestDoubleFinishPanics(t *testing.T) {
	j := Single(10, 0, simtime.Millisecond)
	j.TaskFinished(j.Tasks[0], 1)
	defer func() {
		if recover() == nil {
			t.Error("double finish did not panic")
		}
	}()
	j.TaskFinished(j.Tasks[0], 2)
}

func TestSatisfyDepUnderflowPanics(t *testing.T) {
	j := Single(11, 0, simtime.Millisecond)
	defer func() {
		if recover() == nil {
			t.Error("SatisfyDep underflow did not panic")
		}
	}()
	j.Tasks[0].SatisfyDep()
}

func TestServiceTimeScaling(t *testing.T) {
	j := New(12, 0)
	tk := j.AddTask(10*simtime.Millisecond, "")
	// Fully compute-bound: halving speed doubles time.
	if got := tk.ServiceTime(0.5); got != 20*simtime.Millisecond {
		t.Errorf("ServiceTime(0.5) = %v", got)
	}
	if got := tk.ServiceTime(2); got != 5*simtime.Millisecond {
		t.Errorf("ServiceTime(2) = %v", got)
	}
	// Memory-bound half: only the compute half scales.
	tk.Intensity = 0.5
	if got := tk.ServiceTime(2); got != 7500*simtime.Microsecond {
		t.Errorf("ServiceTime(2) with intensity 0.5 = %v", got)
	}
	if got := tk.ServiceTime(1); got != 10*simtime.Millisecond {
		t.Errorf("ServiceTime(1) = %v", got)
	}
}

func TestServiceTimeZeroSpeedPanics(t *testing.T) {
	j := Single(13, 0, simtime.Millisecond)
	defer func() {
		if recover() == nil {
			t.Error("zero speed did not panic")
		}
	}()
	j.Tasks[0].ServiceTime(0)
}

func TestRandomDAGProperties(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 50; trial++ {
		j := RandomDAG(ID(trial), 0, r, 4, 5, 3, simtime.Millisecond, 10*simtime.Millisecond, 1000)
		order, err := j.TopoOrder()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(order) != len(j.Tasks) {
			t.Fatalf("trial %d: topo covered %d of %d", trial, len(order), len(j.Tasks))
		}
		// Every non-root task must have at least one parent; sizes in range.
		pos := make(map[*Task]int, len(order))
		for i, tk := range order {
			pos[tk] = i
		}
		for _, tk := range j.Tasks {
			if tk.Size < simtime.Millisecond || tk.Size > 10*simtime.Millisecond {
				t.Fatalf("trial %d: size %v out of range", trial, tk.Size)
			}
			for _, e := range tk.In {
				if pos[e.From] >= pos[tk] {
					t.Fatalf("trial %d: topo order violates edge", trial)
				}
			}
		}
	}
}

// Property: finishing tasks in any topological order completes the job
// exactly when the last task finishes.
func TestJobCompletionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		j := RandomDAG(1, 0, r, 3, 4, 2, simtime.Millisecond, 5*simtime.Millisecond, 10)
		order, err := j.TopoOrder()
		if err != nil {
			return false
		}
		now := simtime.Time(0)
		for i, tk := range order {
			now += simtime.Millisecond
			done := j.TaskFinished(tk, now)
			// Propagate deps as the scheduler would.
			for _, e := range tk.Out {
				if e.To.SatisfyDep() {
					e.To.State = TaskReady
				}
			}
			if done != (i == len(order)-1) {
				return false
			}
		}
		return j.Done() && j.FinishAt == now
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTaskStateString(t *testing.T) {
	states := []TaskState{TaskBlocked, TaskReady, TaskQueued, TaskRunning, TaskFinished}
	want := []string{"blocked", "ready", "queued", "running", "finished"}
	for i, s := range states {
		if s.String() != want[i] {
			t.Errorf("state %d = %q", i, s.String())
		}
	}
	if TaskState(99).String() != "TaskState(99)" {
		t.Error("unknown state formatting")
	}
}
