// Package job implements HolDCSim's job and task model (paper Sec. III-C).
//
// Each job is a directed acyclic graph (DAG) G(V, E) of tasks. A link from
// task i to task r means i must finish and communicate its result (E's
// data-transfer size D, in bytes) to r's server before r may start —
// spatial and temporal inter-dependence in the paper's terms. A job
// finishes when all of its tasks finish.
package job

import (
	"fmt"

	"holdcsim/internal/simtime"
)

// ID uniquely identifies a job within a simulation run.
type ID int64

// TaskState is the lifecycle of a task.
type TaskState int

// Task lifecycle states.
const (
	TaskBlocked  TaskState = iota // waiting on parents or their data
	TaskReady                     // all inputs available, not yet placed
	TaskQueued                    // placed on a server, waiting for a core
	TaskRunning                   // executing on a core
	TaskFinished                  // execution complete
	TaskLost                      // retracted by a failure; will never finish
)

// String implements fmt.Stringer.
func (s TaskState) String() string {
	switch s {
	case TaskBlocked:
		return "blocked"
	case TaskReady:
		return "ready"
	case TaskQueued:
		return "queued"
	case TaskRunning:
		return "running"
	case TaskFinished:
		return "finished"
	case TaskLost:
		return "lost"
	}
	return fmt.Sprintf("TaskState(%d)", int(s))
}

// Edge is a dependency link: the parent's output of Bytes must reach the
// child's server before the child becomes ready.
type Edge struct {
	From  *Task
	To    *Task
	Bytes int64 // data-transfer size D_l over the link
}

// Task is one executable unit of a job. Size is the nominal service time
// on a 1.0-speed core; heterogeneous cores and DVFS scale it.
type Task struct {
	Job   *Job
	Index int          // position within Job.Tasks
	Size  simtime.Time // service-time requirement w_v at nominal speed

	// Kind tags the task for server specialization (e.g. "app", "db").
	// Empty means any server may run it.
	Kind string

	// Intensity models computation intensiveness (Sec. III-A): the
	// fraction of the task that scales with core frequency. 1 = fully
	// compute-bound; 0 = fully memory/IO-bound (frequency-insensitive).
	Intensity float64

	In  []*Edge // edges from parents
	Out []*Edge // edges to children

	State TaskState

	// Placement and timing, filled in during simulation.
	ServerID    int
	ReadyAt     simtime.Time
	StartAt     simtime.Time
	FinishAt    simtime.Time
	pendingDeps int // parents (or their transfers) not yet satisfied
}

// Name returns a stable human-readable identifier.
func (t *Task) Name() string { return fmt.Sprintf("j%d/t%d", t.Job.ID, t.Index) }

// IsRoot reports whether the task has no parents.
func (t *Task) IsRoot() bool { return len(t.In) == 0 }

// IsSink reports whether the task has no children.
func (t *Task) IsSink() bool { return len(t.Out) == 0 }

// PendingDeps reports the number of unsatisfied inputs.
func (t *Task) PendingDeps() int { return t.pendingDeps }

// SatisfyDep marks one input as satisfied (parent finished and its data
// arrived) and reports whether the task became ready.
func (t *Task) SatisfyDep() bool {
	if t.pendingDeps <= 0 {
		panic("job: SatisfyDep underflow on " + t.Name())
	}
	t.pendingDeps--
	return t.pendingDeps == 0
}

// ServiceTime reports the execution time on a core running at the given
// speed ratio (1.0 = nominal). Only the Intensity-weighted portion scales
// with speed.
func (t *Task) ServiceTime(speed float64) simtime.Time {
	if speed <= 0 {
		panic("job: non-positive core speed")
	}
	scaled := t.Size.Seconds() * (t.Intensity/speed + (1 - t.Intensity))
	return simtime.FromSeconds(scaled)
}

// Job is a user service request expanded into a task DAG.
type Job struct {
	ID       ID
	Tasks    []*Task
	ArriveAt simtime.Time
	FinishAt simtime.Time
	finished int  // count of finished tasks
	lost     bool // retracted by a failure; will never complete
}

// New returns an empty job arriving at the given time.
func New(id ID, arriveAt simtime.Time) *Job {
	return &Job{ID: id, ArriveAt: arriveAt}
}

// AddTask appends a task with the given nominal size and kind, returning
// it. Intensity defaults to 1 (fully compute-bound).
func (j *Job) AddTask(size simtime.Time, kind string) *Task {
	t := &Task{Job: j, Index: len(j.Tasks), Size: size, Kind: kind, Intensity: 1}
	j.Tasks = append(j.Tasks, t)
	return t
}

// Link adds a dependency edge from parent to child carrying bytes of
// result data. Both tasks must belong to this job.
func (j *Job) Link(parent, child *Task, bytes int64) *Edge {
	if parent.Job != j || child.Job != j {
		panic("job: Link across jobs")
	}
	if parent == child {
		panic("job: self-dependency on " + parent.Name())
	}
	e := &Edge{From: parent, To: child, Bytes: bytes}
	parent.Out = append(parent.Out, e)
	child.In = append(child.In, e)
	return e
}

// Seal finalizes the DAG: computes pending-dependency counts, marks root
// tasks ready, and validates acyclicity. Call exactly once, after all
// AddTask/Link calls.
func (j *Job) Seal() error {
	if len(j.Tasks) == 0 {
		return fmt.Errorf("job %d has no tasks", j.ID)
	}
	if _, err := j.TopoOrder(); err != nil {
		return err
	}
	for _, t := range j.Tasks {
		t.pendingDeps = len(t.In)
		if t.pendingDeps == 0 {
			t.State = TaskReady
			t.ReadyAt = j.ArriveAt
		} else {
			t.State = TaskBlocked
		}
	}
	return nil
}

// TopoOrder returns the tasks in a topological order, or an error if the
// graph has a cycle.
func (j *Job) TopoOrder() ([]*Task, error) {
	indeg := make([]int, len(j.Tasks))
	for _, t := range j.Tasks {
		for _, e := range t.Out {
			indeg[e.To.Index]++
		}
	}
	queue := make([]*Task, 0, len(j.Tasks))
	for _, t := range j.Tasks {
		if indeg[t.Index] == 0 {
			queue = append(queue, t)
		}
	}
	order := make([]*Task, 0, len(j.Tasks))
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		order = append(order, t)
		for _, e := range t.Out {
			indeg[e.To.Index]--
			if indeg[e.To.Index] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(order) != len(j.Tasks) {
		return nil, fmt.Errorf("job %d task graph has a cycle", j.ID)
	}
	return order, nil
}

// ReadyTasks returns the tasks currently in the Ready state.
func (j *Job) ReadyTasks() []*Task {
	var out []*Task
	for _, t := range j.Tasks {
		if t.State == TaskReady {
			out = append(out, t)
		}
	}
	return out
}

// TaskFinished records that t completed at time now and reports whether
// the whole job is now done. The caller is responsible for propagating
// output edges (data transfers) and calling SatisfyDep on children.
func (j *Job) TaskFinished(t *Task, now simtime.Time) (jobDone bool) {
	if t.Job != j {
		panic("job: TaskFinished for foreign task")
	}
	if t.State == TaskFinished {
		panic("job: double finish of " + t.Name())
	}
	t.State = TaskFinished
	t.FinishAt = now
	j.finished++
	if j.finished == len(j.Tasks) {
		j.FinishAt = now
		return true
	}
	return false
}

// Done reports whether all tasks have finished.
func (j *Job) Done() bool { return j.finished == len(j.Tasks) }

// MarkLost records that the job was retracted by a failure (server crash
// with a drop policy, or no alive server to place it on). A lost job
// never completes; the scheduler stops tracking it.
func (j *Job) MarkLost() { j.lost = true }

// Lost reports whether the job was retracted by a failure.
func (j *Job) Lost() bool { return j.lost }

// Sojourn reports the job's total time in system (finish - arrive).
// Valid only after Done.
func (j *Job) Sojourn() simtime.Time { return j.FinishAt - j.ArriveAt }

// TotalWork reports the sum of task sizes.
func (j *Job) TotalWork() simtime.Time {
	var w simtime.Time
	for _, t := range j.Tasks {
		w += t.Size
	}
	return w
}
