package job

import (
	"holdcsim/internal/rng"
	"holdcsim/internal/simtime"
)

// The builders below create the DAG shapes used across the paper's case
// studies: single-task jobs (Secs. IV-A/B/C), two-tier app+db requests
// (Sec. III-C's web example), fan-out/fan-in scatter-gather, chains, and
// random DAGs for the network case study (Sec. IV-D).

// Single builds a one-task job.
func Single(id ID, arrive simtime.Time, size simtime.Time) *Job {
	j := New(id, arrive)
	j.AddTask(size, "")
	mustSeal(j)
	return j
}

// TwoTier builds the paper's web-request example: an application-server
// task followed by a database task, linked by bytes of intermediate data.
func TwoTier(id ID, arrive simtime.Time, appSize, dbSize simtime.Time, bytes int64) *Job {
	j := New(id, arrive)
	app := j.AddTask(appSize, "app")
	db := j.AddTask(dbSize, "db")
	j.Link(app, db, bytes)
	mustSeal(j)
	return j
}

// Chain builds a linear pipeline of n tasks of the given size, each edge
// carrying bytes.
func Chain(id ID, arrive simtime.Time, n int, size simtime.Time, bytes int64) *Job {
	if n < 1 {
		panic("job: Chain needs n >= 1")
	}
	j := New(id, arrive)
	prev := j.AddTask(size, "")
	for i := 1; i < n; i++ {
		t := j.AddTask(size, "")
		j.Link(prev, t, bytes)
		prev = t
	}
	mustSeal(j)
	return j
}

// ScatterGather builds a root task that fans out to width workers whose
// results feed a final aggregation task — the structure of a web-search
// query over index shards.
func ScatterGather(id ID, arrive simtime.Time, width int, rootSize, workerSize, gatherSize simtime.Time, bytes int64) *Job {
	if width < 1 {
		panic("job: ScatterGather needs width >= 1")
	}
	j := New(id, arrive)
	root := j.AddTask(rootSize, "frontend")
	gather := j.AddTask(gatherSize, "frontend")
	for i := 0; i < width; i++ {
		w := j.AddTask(workerSize, "worker")
		j.Link(root, w, bytes)
		j.Link(w, gather, bytes)
	}
	mustSeal(j)
	return j
}

// RandomDAG builds a layered random DAG: layers of random width, each
// non-root task depending on 1..maxDeps random tasks from the previous
// layer. Sizes are drawn uniformly from [minSize, maxSize] and every edge
// carries bytes. This drives the Sec. IV-D joint server-network study,
// where "dependence among tasks is modeled as a DAG where traffic pattern
// among these tasks is known".
func RandomDAG(id ID, arrive simtime.Time, r *rng.Source, layers, maxWidth, maxDeps int,
	minSize, maxSize simtime.Time, bytes int64) *Job {
	if layers < 1 || maxWidth < 1 || maxDeps < 1 {
		panic("job: RandomDAG needs positive shape parameters")
	}
	j := New(id, arrive)
	size := func() simtime.Time {
		return minSize + simtime.Time(r.IntN(int(maxSize-minSize)+1))
	}
	prev := []*Task{}
	for l := 0; l < layers; l++ {
		width := 1 + r.IntN(maxWidth)
		cur := make([]*Task, 0, width)
		for w := 0; w < width; w++ {
			t := j.AddTask(size(), "")
			if l > 0 {
				deps := 1 + r.IntN(maxDeps)
				if deps > len(prev) {
					deps = len(prev)
				}
				for _, pi := range r.Perm(len(prev))[:deps] {
					j.Link(prev[pi], t, bytes)
				}
			}
			cur = append(cur, t)
		}
		prev = cur
	}
	mustSeal(j)
	return j
}

func mustSeal(j *Job) {
	if err := j.Seal(); err != nil {
		panic(err)
	}
}
