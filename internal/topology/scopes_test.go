package topology

import (
	"testing"
)

func build(t *testing.T, b Topology) *Graph {
	t.Helper()
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// checkPartition verifies groups partition 0..n-1 exactly once each.
func checkPartition(t *testing.T, name string, groups [][]int, n int) {
	t.Helper()
	seen := make([]bool, n)
	for gi, g := range groups {
		prev := -1
		for _, h := range g {
			if h < 0 || h >= n {
				t.Fatalf("%s[%d]: member %d out of range [0,%d)", name, gi, h, n)
			}
			if h <= prev {
				t.Errorf("%s[%d]: members not strictly ascending: %v", name, gi, g)
			}
			prev = h
			if seen[h] {
				t.Errorf("%s: member %d in two groups", name, h)
			}
			seen[h] = true
		}
	}
	for h, ok := range seen {
		if !ok {
			t.Errorf("%s: member %d in no group", name, h)
		}
	}
}

func TestScopeMapFatTree(t *testing.T) {
	// k=4 fat tree: 16 hosts, 8 edge switches (racks of 2), 4 pods.
	sm := NewScopeMap(build(t, FatTree{K: 4}))
	if sm.NumRacks() != 8 {
		t.Errorf("racks = %d, want 8", sm.NumRacks())
	}
	if sm.NumPods() != 4 {
		t.Errorf("pods = %d, want 4", sm.NumPods())
	}
	for r, hs := range sm.RackHosts {
		if len(hs) != 2 {
			t.Errorf("rack %d has %d hosts, want 2", r, len(hs))
		}
		if sm.RackSwitch[r] < 0 {
			t.Errorf("rack %d has no ToR", r)
		}
	}
	for p, hs := range sm.PodHosts {
		if len(hs) != 4 {
			t.Errorf("pod %d has %d hosts, want 4", p, len(hs))
		}
		// Edge + aggregation per pod; cores are level 3 and belong to none.
		if len(sm.PodSwitches[p]) != 4 {
			t.Errorf("pod %d has %d switches, want 4", p, len(sm.PodSwitches[p]))
		}
	}
	checkPartition(t, "RackHosts", sm.RackHosts, 16)
	checkPartition(t, "PodHosts", sm.PodHosts, 16)
	for h := range sm.RackOf {
		if sm.RackOf[h] < 0 || sm.RackOf[h] >= sm.NumRacks() {
			t.Errorf("RackOf[%d] = %d out of range", h, sm.RackOf[h])
		}
		if sm.PodOf[h] < 0 || sm.PodOf[h] >= sm.NumPods() {
			t.Errorf("PodOf[%d] = %d out of range", h, sm.PodOf[h])
		}
	}
}

func TestScopeMapStar(t *testing.T) {
	// A star is one rack under the hub, one pod.
	sm := NewScopeMap(build(t, Star{Hosts: 6}))
	if sm.NumRacks() != 1 || len(sm.RackHosts[0]) != 6 {
		t.Errorf("racks = %v", sm.RackHosts)
	}
	if sm.NumPods() != 1 || len(sm.PodHosts[0]) != 6 {
		t.Errorf("pods = %v", sm.PodHosts)
	}
	if sm.Level[0] != 1 {
		t.Errorf("hub level = %d, want 1", sm.Level[0])
	}
	if len(sm.AttachedHosts[0]) != 6 {
		t.Errorf("hub subtree = %v, want all 6 hosts", sm.AttachedHosts[0])
	}
}

func TestScopeMapCamCubeFallback(t *testing.T) {
	// CamCube has no switches: racks are fixed blocks, one pod total.
	sm := NewScopeMap(build(t, CamCube{X: 3, Y: 3, Z: 2})) // 18 hosts
	wantRacks := (18 + FallbackRackSize - 1) / FallbackRackSize
	if sm.NumRacks() != wantRacks {
		t.Errorf("racks = %d, want %d", sm.NumRacks(), wantRacks)
	}
	for r, hs := range sm.RackHosts {
		if sm.RackSwitch[r] != -1 {
			t.Errorf("fallback rack %d has ToR %d", r, sm.RackSwitch[r])
		}
		if r < sm.NumRacks()-1 && len(hs) != FallbackRackSize {
			t.Errorf("fallback rack %d has %d hosts, want %d", r, len(hs), FallbackRackSize)
		}
	}
	if sm.NumPods() != 1 || len(sm.PodHosts[0]) != 18 {
		t.Errorf("pods = %v, want one pod of 18", sm.PodHosts)
	}
	checkPartition(t, "RackHosts", sm.RackHosts, 18)
}

func TestScopeMapBCube(t *testing.T) {
	// BCube(2,1): 4 hosts, 4 switches, no switch-switch links, so every
	// switch is its own pod component and every host attaches to k+1
	// switches (rack = first-listed).
	sm := NewScopeMap(build(t, BCube{N: 2, K: 1}))
	if sm.NumRacks() != 2 {
		t.Errorf("racks = %d, want 2 (level-0 switches)", sm.NumRacks())
	}
	checkPartition(t, "RackHosts", sm.RackHosts, 4)
	checkPartition(t, "PodHosts", sm.PodHosts, 4)
	for s, hs := range sm.AttachedHosts {
		if len(hs) != 2 {
			t.Errorf("switch %d subtree = %v, want 2 hosts", s, hs)
		}
	}
}

func TestScopeMapDeterministic(t *testing.T) {
	a := NewScopeMap(build(t, FatTree{K: 4}))
	b := NewScopeMap(build(t, FatTree{K: 4}))
	for r := range a.RackHosts {
		for i := range a.RackHosts[r] {
			if a.RackHosts[r][i] != b.RackHosts[r][i] {
				t.Fatalf("rack %d differs across identical builds", r)
			}
		}
	}
	for p := range a.PodSwitches {
		for i := range a.PodSwitches[p] {
			if a.PodSwitches[p][i] != b.PodSwitches[p][i] {
				t.Fatalf("pod %d switch set differs across identical builds", p)
			}
		}
	}
}
