package topology

// ScopeMap derives failure-domain groupings — racks, pods, and switch
// subtrees — from a built graph. The correlated-failure engine resolves
// blast-radius fault targets against these groupings, so the derivation
// must be deterministic: every slice is ordered by creation-order index
// and the same graph always yields the same map.
//
// Definitions (chosen to match the physical reading of each named
// architecture without per-builder special cases):
//
//   - rack: the set of hosts sharing their first-listed switch neighbor
//     (the ToR). Hosts with no switch neighbor (server-only fabrics like
//     CamCube) fall back to fixed blocks of FallbackRackSize hosts in
//     creation order — the "hosts that share a PDU" reading.
//   - switch level: minimum hop distance from any host (1 = edge/ToR).
//   - pod: a connected component of the switch subgraph restricted to
//     level <= 2 switches (edge + aggregation). In a fat-tree this is
//     exactly the pod; in a star or flattened butterfly the whole fabric
//     is one pod; in BCube every switch is its own component so pods
//     collapse onto racks. Racks with no switch live in pod 0.
//   - switch subtree: a switch plus the hosts directly attached to it.
//     For an edge switch this is its rack; for aggregation and core
//     switches the subtree is the switch alone (its blast radius is
//     carried by the network model, not by host crashes).
type ScopeMap struct {
	// RackHosts[r] lists host indices (positions in Graph.Hosts order)
	// of rack r, ascending.
	RackHosts [][]int
	// RackSwitch[r] is the switch index (position in Graph.Switches
	// order) of rack r's ToR, or -1 for fallback racks.
	RackSwitch []int
	// RackOf[h] is the rack index of host h.
	RackOf []int
	// PodHosts[p] lists host indices of pod p, ascending.
	PodHosts [][]int
	// PodSwitches[p] lists switch indices of pod p, ascending.
	PodSwitches [][]int
	// PodOf[h] is the pod index of host h.
	PodOf []int
	// AttachedHosts[s] lists host indices directly linked to switch s,
	// ascending — the switch's subtree blast radius.
	AttachedHosts [][]int
	// Level[s] is the minimum hop distance of switch s from any host
	// (1 = edge/ToR), or -1 if no host is reachable.
	Level []int
}

// FallbackRackSize is the rack width assumed for hosts with no switch
// neighbor (server-only fabrics).
const FallbackRackSize = 8

// NewScopeMap derives the failure-domain groupings of g.
func NewScopeMap(g *Graph) *ScopeMap {
	hosts := g.Hosts()
	switches := g.Switches()
	swIdx := make(map[NodeID]int, len(switches)) // node -> switch index
	for i, s := range switches {
		swIdx[s] = i
	}
	sm := &ScopeMap{
		RackOf:        make([]int, len(hosts)),
		PodOf:         make([]int, len(hosts)),
		AttachedHosts: make([][]int, len(switches)),
		Level:         make([]int, len(switches)),
	}

	// Attached hosts per switch, and each host's ToR (first switch
	// neighbor in adjacency order).
	tor := make([]int, len(hosts)) // host -> switch index, -1 if none
	for i, h := range hosts {
		tor[i] = -1
		for _, a := range g.Neighbors(h) {
			if j, ok := swIdx[a.Peer]; ok {
				if tor[i] < 0 {
					tor[i] = j
				}
				sm.AttachedHosts[j] = append(sm.AttachedHosts[j], i)
			}
		}
	}

	// Racks: group hosts by ToR in first-seen order, then fallback
	// blocks for switchless hosts.
	rackBySwitch := make(map[int]int)
	var fallback []int
	for i := range hosts {
		if tor[i] < 0 {
			fallback = append(fallback, i)
			continue
		}
		r, ok := rackBySwitch[tor[i]]
		if !ok {
			r = len(sm.RackHosts)
			rackBySwitch[tor[i]] = r
			sm.RackHosts = append(sm.RackHosts, nil)
			sm.RackSwitch = append(sm.RackSwitch, tor[i])
		}
		sm.RackHosts[r] = append(sm.RackHosts[r], i)
		sm.RackOf[i] = r
	}
	for len(fallback) > 0 {
		n := FallbackRackSize
		if n > len(fallback) {
			n = len(fallback)
		}
		r := len(sm.RackHosts)
		sm.RackHosts = append(sm.RackHosts, fallback[:n:n])
		sm.RackSwitch = append(sm.RackSwitch, -1)
		for _, h := range fallback[:n] {
			sm.RackOf[h] = r
		}
		fallback = fallback[n:]
	}

	// Switch levels: multi-source BFS from all hosts at distance 0.
	level := make([]int, g.NumNodes())
	for i := range level {
		level[i] = -1
	}
	queue := make([]NodeID, 0, len(hosts))
	for _, h := range hosts {
		level[h] = 0
		queue = append(queue, h)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range g.Neighbors(u) {
			if level[a.Peer] < 0 {
				level[a.Peer] = level[u] + 1
				queue = append(queue, a.Peer)
			}
		}
	}
	for j, s := range switches {
		sm.Level[j] = level[s]
	}

	// Pods: connected components of the level<=2 switch subgraph
	// (switch-switch links only), numbered in ascending-switch order.
	podOfSwitch := make([]int, len(switches))
	for j := range podOfSwitch {
		podOfSwitch[j] = -1
	}
	inPodGraph := func(j int) bool { return sm.Level[j] >= 1 && sm.Level[j] <= 2 }
	for j := range switches {
		if podOfSwitch[j] >= 0 || !inPodGraph(j) {
			continue
		}
		p := len(sm.PodSwitches)
		sm.PodSwitches = append(sm.PodSwitches, nil)
		stack := []int{j}
		podOfSwitch[j] = p
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			sm.PodSwitches[p] = append(sm.PodSwitches[p], cur)
			for _, a := range g.Neighbors(switches[cur]) {
				k, ok := swIdx[a.Peer]
				if !ok || podOfSwitch[k] >= 0 || !inPodGraph(k) {
					continue
				}
				podOfSwitch[k] = p
				stack = append(stack, k)
			}
		}
		sortInts(sm.PodSwitches[p])
	}
	if len(sm.PodSwitches) == 0 {
		// No switches at all: one pod holding everything.
		sm.PodSwitches = append(sm.PodSwitches, nil)
	}
	sm.PodHosts = make([][]int, len(sm.PodSwitches))
	for r, hs := range sm.RackHosts {
		p := 0
		if sw := sm.RackSwitch[r]; sw >= 0 && podOfSwitch[sw] >= 0 {
			p = podOfSwitch[sw]
		}
		for _, h := range hs {
			sm.PodOf[h] = p
			sm.PodHosts[p] = append(sm.PodHosts[p], h)
		}
	}
	for p := range sm.PodHosts {
		sortInts(sm.PodHosts[p])
	}
	return sm
}

// NumRacks reports the rack count.
func (sm *ScopeMap) NumRacks() int { return len(sm.RackHosts) }

// NumPods reports the pod count.
func (sm *ScopeMap) NumPods() int { return len(sm.PodHosts) }

func sortInts(a []int) {
	// Insertion sort: scope slices are small and this avoids an import.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
