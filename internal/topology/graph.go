// Package topology implements HolDCSim's network topology substrate
// (paper Sec. III-B): a node/link graph with shortest-path routing and
// deterministic ECMP, plus builders for the paper's named architectures —
// fat-tree and flattened butterfly (switch-only), CamCube (server-only),
// BCube (hybrid), and the star used in the switch validation.
package topology

import (
	"fmt"
)

// NodeID identifies a node (host or switch) within one graph.
type NodeID int

// Kind distinguishes end hosts from switching elements.
type Kind int

// Node kinds.
const (
	Host Kind = iota
	Switch
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Host:
		return "host"
	case Switch:
		return "switch"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Node is one vertex of the topology.
type Node struct {
	ID   NodeID
	Kind Kind
	Name string
}

// Link is one bidirectional edge with a symmetric rate.
type Link struct {
	ID      int
	A, B    NodeID
	RateBps float64
}

// Other returns the far end of the link from n.
func (l *Link) Other(n NodeID) NodeID {
	if n == l.A {
		return l.B
	}
	return l.A
}

type adjacency struct {
	link int
	peer NodeID
}

// Graph is a static topology: nodes, links, and routing state.
// AllowHostTransit enables forwarding through host nodes, required by
// server-only (CamCube) and hybrid (BCube) architectures.
type Graph struct {
	AllowHostTransit bool

	nodes []Node
	links []Link
	adj   [][]adjacency

	// dist caches BFS hop counts per destination (lazy).
	dist map[NodeID][]int32
}

// NewGraph returns an empty graph.
func NewGraph(allowHostTransit bool) *Graph {
	return &Graph{AllowHostTransit: allowHostTransit, dist: make(map[NodeID][]int32)}
}

// AddNode appends a node and returns its ID.
func (g *Graph) AddNode(kind Kind, name string) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Kind: kind, Name: name})
	g.adj = append(g.adj, nil)
	return id
}

// AddLink connects a and b at rateBps and returns the link ID. Self-loops
// and out-of-range nodes are errors.
func (g *Graph) AddLink(a, b NodeID, rateBps float64) (int, error) {
	if a == b {
		return 0, fmt.Errorf("topology: self-loop on node %d", a)
	}
	if !g.valid(a) || !g.valid(b) {
		return 0, fmt.Errorf("topology: link endpoints %d-%d out of range", a, b)
	}
	if rateBps <= 0 {
		return 0, fmt.Errorf("topology: non-positive link rate %g", rateBps)
	}
	id := len(g.links)
	g.links = append(g.links, Link{ID: id, A: a, B: b, RateBps: rateBps})
	g.adj[a] = append(g.adj[a], adjacency{link: id, peer: b})
	g.adj[b] = append(g.adj[b], adjacency{link: id, peer: a})
	g.dist = make(map[NodeID][]int32) // invalidate route cache
	return id, nil
}

func (g *Graph) valid(n NodeID) bool { return n >= 0 && int(n) < len(g.nodes) }

// NumNodes reports the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks reports the link count.
func (g *Graph) NumLinks() int { return len(g.links) }

// Node returns node metadata.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Link returns link metadata.
func (g *Graph) Link(id int) Link { return g.links[id] }

// Hosts lists all host node IDs in creation order.
func (g *Graph) Hosts() []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Kind == Host {
			out = append(out, n.ID)
		}
	}
	return out
}

// Switches lists all switch node IDs in creation order.
func (g *Graph) Switches() []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Kind == Switch {
			out = append(out, n.ID)
		}
	}
	return out
}

// Degree reports how many links attach to n.
func (g *Graph) Degree(n NodeID) int { return len(g.adj[n]) }

// Neighbors reports the (link, peer) pairs attached to n.
func (g *Graph) Neighbors(n NodeID) [](struct {
	Link int
	Peer NodeID
}) {
	out := make([]struct {
		Link int
		Peer NodeID
	}, len(g.adj[n]))
	for i, a := range g.adj[n] {
		out[i].Link = a.link
		out[i].Peer = a.peer
	}
	return out
}

// distTo returns (cached) BFS hop distances toward dst, respecting the
// host-transit rule: paths may pass through a host only when
// AllowHostTransit is set.
func (g *Graph) distTo(dst NodeID) []int32 {
	if d, ok := g.dist[dst]; ok {
		return d
	}
	d := make([]int32, len(g.nodes))
	for i := range d {
		d[i] = -1
	}
	d[dst] = 0
	queue := []NodeID{dst}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		// We expand u's neighbors only if a path may pass *through* u.
		// dst itself is an endpoint, not transit.
		if u != dst && g.nodes[u].Kind == Host && !g.AllowHostTransit {
			continue
		}
		for _, a := range g.adj[u] {
			if d[a.peer] == -1 {
				d[a.peer] = d[u] + 1
				queue = append(queue, a.peer)
			}
		}
	}
	g.dist[dst] = d
	return d
}

// HopCount reports the shortest hop distance between src and dst, or -1
// if unreachable.
func (g *Graph) HopCount(src, dst NodeID) int {
	if src == dst {
		return 0
	}
	return int(g.distTo(dst)[src])
}

// Path computes a shortest path from src to dst. With multiple equal-cost
// next hops, ecmpKey selects one deterministically (flows hash onto
// paths); key 0 always takes the first candidate, giving single-path
// routing. It returns the node sequence (src..dst) and the link IDs
// between them.
func (g *Graph) Path(src, dst NodeID, ecmpKey uint64) ([]NodeID, []int, error) {
	if !g.valid(src) || !g.valid(dst) {
		return nil, nil, fmt.Errorf("topology: path endpoints %d-%d out of range", src, dst)
	}
	if src == dst {
		return []NodeID{src}, nil, nil
	}
	dist := g.distTo(dst)
	if dist[src] < 0 {
		return nil, nil, fmt.Errorf("topology: no path from %d to %d", src, dst)
	}
	nodes := []NodeID{src}
	var links []int
	cur := src
	for cur != dst {
		var candidates []adjacency
		for _, a := range g.adj[cur] {
			if dist[a.peer] == dist[cur]-1 {
				// Next hop must be usable: dst, a switch, or a
				// transit-permitted host.
				if a.peer == dst || g.nodes[a.peer].Kind == Switch || g.AllowHostTransit {
					candidates = append(candidates, a)
				}
			}
		}
		if len(candidates) == 0 {
			return nil, nil, fmt.Errorf("topology: routing stuck at node %d toward %d", cur, dst)
		}
		pick := candidates[0]
		if ecmpKey != 0 && len(candidates) > 1 {
			h := ecmpKey
			h ^= uint64(cur) * 0x9e3779b97f4a7c15
			h ^= h >> 29
			h *= 0xbf58476d1ce4e5b9
			h ^= h >> 32
			pick = candidates[h%uint64(len(candidates))]
		}
		links = append(links, pick.link)
		nodes = append(nodes, pick.peer)
		cur = pick.peer
	}
	return nodes, links, nil
}

// Validate checks graph invariants: every host reaches every other host.
func (g *Graph) Validate() error {
	hosts := g.Hosts()
	if len(hosts) == 0 {
		return fmt.Errorf("topology: no hosts")
	}
	dist := g.distTo(hosts[0])
	for _, h := range hosts[1:] {
		if dist[h] < 0 {
			return fmt.Errorf("topology: host %d cannot reach host %d", h, hosts[0])
		}
	}
	return nil
}
