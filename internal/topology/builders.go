package topology

import (
	"fmt"
)

// Topology builds a concrete graph. Implementations correspond to the
// architectures named in paper Sec. III-B.
type Topology interface {
	// Build constructs the graph. Host nodes are created in a stable
	// order so host index i across runs refers to the same position.
	Build() (*Graph, error)
	// Name identifies the topology family.
	Name() string
}

// Star is N hosts attached to a single switch — the paper's switch
// validation setup (Sec. V-B: 24 servers on one Cisco 2960).
type Star struct {
	Hosts   int
	RateBps float64
}

// Name implements Topology.
func (s Star) Name() string { return fmt.Sprintf("star-%d", s.Hosts) }

// NumHosts reports the declared host count.
func (s Star) NumHosts() int { return s.Hosts }

// NumSwitches reports the single central switch.
func (s Star) NumSwitches() int { return 1 }

// Build implements Topology.
func (s Star) Build() (*Graph, error) {
	if s.Hosts < 1 {
		return nil, fmt.Errorf("topology: star needs at least 1 host")
	}
	rate := s.RateBps
	if rate <= 0 {
		rate = 1e9
	}
	g := NewGraph(false)
	sw := g.AddNode(Switch, "sw0")
	for i := 0; i < s.Hosts; i++ {
		h := g.AddNode(Host, fmt.Sprintf("h%d", i))
		if _, err := g.AddLink(h, sw, rate); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// FatTree is the k-ary fat-tree of Al-Fares et al. [8], the paper's
// Fig. 10 topology: k pods each with k/2 edge and k/2 aggregation
// switches, (k/2)^2 core switches, and k^3/4 hosts, with full bisection
// bandwidth. K must be even and >= 2.
type FatTree struct {
	K       int
	RateBps float64
}

// Name implements Topology.
func (f FatTree) Name() string { return fmt.Sprintf("fattree-k%d", f.K) }

// NumHosts reports k^3/4.
func (f FatTree) NumHosts() int { return f.K * f.K * f.K / 4 }

// NumSwitches reports 5k^2/4 (core + agg + edge).
func (f FatTree) NumSwitches() int { return 5 * f.K * f.K / 4 }

// Build implements Topology.
func (f FatTree) Build() (*Graph, error) {
	k := f.K
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree k must be even and >= 2 (got %d)", k)
	}
	rate := f.RateBps
	if rate <= 0 {
		rate = 10e9
	}
	g := NewGraph(false)
	half := k / 2

	// Hosts first so host ordering is pod-major.
	hosts := make([]NodeID, 0, f.NumHosts())
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				hosts = append(hosts, g.AddNode(Host, fmt.Sprintf("p%d-e%d-h%d", pod, e, h)))
			}
		}
	}
	core := make([][]NodeID, half) // core[i][j]
	for i := 0; i < half; i++ {
		core[i] = make([]NodeID, half)
		for j := 0; j < half; j++ {
			core[i][j] = g.AddNode(Switch, fmt.Sprintf("core-%d-%d", i, j))
		}
	}
	for pod := 0; pod < k; pod++ {
		aggs := make([]NodeID, half)
		edges := make([]NodeID, half)
		for i := 0; i < half; i++ {
			aggs[i] = g.AddNode(Switch, fmt.Sprintf("p%d-agg%d", pod, i))
			edges[i] = g.AddNode(Switch, fmt.Sprintf("p%d-edge%d", pod, i))
		}
		// Edge <-> hosts.
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				hostIdx := pod*half*half + e*half + h
				if _, err := g.AddLink(hosts[hostIdx], edges[e], rate); err != nil {
					return nil, err
				}
			}
		}
		// Edge <-> agg: full bipartite within the pod.
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				if _, err := g.AddLink(edges[e], aggs[a], rate); err != nil {
					return nil, err
				}
			}
		}
		// Agg a <-> core[a][*].
		for a := 0; a < half; a++ {
			for j := 0; j < half; j++ {
				if _, err := g.AddLink(aggs[a], core[a][j], rate); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// BCube is the hybrid server-centric BCube(n, k) of Guo et al. [26]:
// n^(k+1) hosts, each with k+1 ports; level-l switches connect hosts
// differing only in digit l of their base-n address. Hosts forward
// traffic (hybrid architecture).
type BCube struct {
	N       int // switch port count
	K       int // levels - 1
	RateBps float64
}

// Name implements Topology.
func (b BCube) Name() string { return fmt.Sprintf("bcube-n%d-k%d", b.N, b.K) }

// NumHosts reports n^(k+1).
func (b BCube) NumHosts() int {
	n := 1
	for i := 0; i <= b.K; i++ {
		n *= b.N
	}
	return n
}

// NumSwitches reports (k+1)·n^k: k+1 levels of n^k switches each.
func (b BCube) NumSwitches() int { return (b.K + 1) * b.NumHosts() / b.N }

// Build implements Topology.
func (b BCube) Build() (*Graph, error) {
	if b.N < 2 || b.K < 0 {
		return nil, fmt.Errorf("topology: BCube needs n >= 2, k >= 0 (got n=%d k=%d)", b.N, b.K)
	}
	rate := b.RateBps
	if rate <= 0 {
		rate = 1e9
	}
	g := NewGraph(true) // hybrid: hosts forward
	nHosts := b.NumHosts()
	hosts := make([]NodeID, nHosts)
	for i := 0; i < nHosts; i++ {
		hosts[i] = g.AddNode(Host, fmt.Sprintf("h%d", i))
	}
	// Level l has n^k switches, each connecting n hosts.
	nPerLevel := nHosts / b.N
	pow := func(base, exp int) int {
		out := 1
		for i := 0; i < exp; i++ {
			out *= base
		}
		return out
	}
	for l := 0; l <= b.K; l++ {
		stride := pow(b.N, l)
		for s := 0; s < nPerLevel; s++ {
			sw := g.AddNode(Switch, fmt.Sprintf("l%d-s%d", l, s))
			// The n hosts of switch (l, s) share all digits except
			// digit l. s enumerates the remaining digit combination.
			low := s % stride
			high := s / stride
			base := high*stride*b.N + low
			for d := 0; d < b.N; d++ {
				h := base + d*stride
				if _, err := g.AddLink(hosts[h], sw, rate); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// CamCube is the server-only 3D torus of Abu-Libdeh et al. [6], [7]:
// hosts at integer coordinates of an X×Y×Z torus, each directly linked to
// its six neighbors; servers do all switching.
type CamCube struct {
	X, Y, Z int
	RateBps float64
}

// Name implements Topology.
func (c CamCube) Name() string { return fmt.Sprintf("camcube-%dx%dx%d", c.X, c.Y, c.Z) }

// NumHosts reports X·Y·Z.
func (c CamCube) NumHosts() int { return c.X * c.Y * c.Z }

// NumSwitches reports zero: CamCube is server-only.
func (c CamCube) NumSwitches() int { return 0 }

// Build implements Topology.
func (c CamCube) Build() (*Graph, error) {
	if c.X < 2 || c.Y < 2 || c.Z < 2 {
		return nil, fmt.Errorf("topology: CamCube dims must be >= 2 (got %dx%dx%d)", c.X, c.Y, c.Z)
	}
	rate := c.RateBps
	if rate <= 0 {
		rate = 1e9
	}
	g := NewGraph(true) // server-only: hosts forward
	id := func(x, y, z int) NodeID {
		return NodeID(x*c.Y*c.Z + y*c.Z + z)
	}
	for x := 0; x < c.X; x++ {
		for y := 0; y < c.Y; y++ {
			for z := 0; z < c.Z; z++ {
				g.AddNode(Host, fmt.Sprintf("h%d-%d-%d", x, y, z))
			}
		}
	}
	// +1 direction links in each dimension close the torus. Avoid double
	// links when a dimension has exactly 2 elements.
	for x := 0; x < c.X; x++ {
		for y := 0; y < c.Y; y++ {
			for z := 0; z < c.Z; z++ {
				if c.X > 2 || x == 0 {
					if _, err := g.AddLink(id(x, y, z), id((x+1)%c.X, y, z), rate); err != nil {
						return nil, err
					}
				}
				if c.Y > 2 || y == 0 {
					if _, err := g.AddLink(id(x, y, z), id(x, (y+1)%c.Y, z), rate); err != nil {
						return nil, err
					}
				}
				if c.Z > 2 || z == 0 {
					if _, err := g.AddLink(id(x, y, z), id(x, y, (z+1)%c.Z), rate); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return g, nil
}

// FlattenedButterfly is the 2D flattened butterfly of Kim et al. [34]:
// a RowsxCols grid of routers, fully connected within each row and each
// column, with Concentration hosts per router.
type FlattenedButterfly struct {
	Rows, Cols    int
	Concentration int
	RateBps       float64
}

// Name implements Topology.
func (f FlattenedButterfly) Name() string {
	return fmt.Sprintf("flatbutterfly-%dx%dx%d", f.Rows, f.Cols, f.Concentration)
}

// NumHosts reports Rows·Cols·Concentration.
func (f FlattenedButterfly) NumHosts() int { return f.Rows * f.Cols * f.Concentration }

// NumSwitches reports the Rows·Cols router grid.
func (f FlattenedButterfly) NumSwitches() int { return f.Rows * f.Cols }

// Build implements Topology.
func (f FlattenedButterfly) Build() (*Graph, error) {
	if f.Rows < 1 || f.Cols < 1 || f.Concentration < 1 {
		return nil, fmt.Errorf("topology: flattened butterfly needs positive dims")
	}
	rate := f.RateBps
	if rate <= 0 {
		rate = 10e9
	}
	g := NewGraph(false)
	routers := make([][]NodeID, f.Rows)
	// Hosts first, router-major, for stable host ordering.
	hostOf := make(map[[3]int]NodeID)
	for r := 0; r < f.Rows; r++ {
		for c := 0; c < f.Cols; c++ {
			for h := 0; h < f.Concentration; h++ {
				hostOf[[3]int{r, c, h}] = g.AddNode(Host, fmt.Sprintf("r%d-c%d-h%d", r, c, h))
			}
		}
	}
	for r := 0; r < f.Rows; r++ {
		routers[r] = make([]NodeID, f.Cols)
		for c := 0; c < f.Cols; c++ {
			routers[r][c] = g.AddNode(Switch, fmt.Sprintf("rt-%d-%d", r, c))
			for h := 0; h < f.Concentration; h++ {
				if _, err := g.AddLink(hostOf[[3]int{r, c, h}], routers[r][c], rate); err != nil {
					return nil, err
				}
			}
		}
	}
	// Full row connectivity.
	for r := 0; r < f.Rows; r++ {
		for c1 := 0; c1 < f.Cols; c1++ {
			for c2 := c1 + 1; c2 < f.Cols; c2++ {
				if _, err := g.AddLink(routers[r][c1], routers[r][c2], rate); err != nil {
					return nil, err
				}
			}
		}
	}
	// Full column connectivity.
	for c := 0; c < f.Cols; c++ {
		for r1 := 0; r1 < f.Rows; r1++ {
			for r2 := r1 + 1; r2 < f.Rows; r2++ {
				if _, err := g.AddLink(routers[r1][c], routers[r2][c], rate); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}
