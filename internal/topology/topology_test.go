package topology

import (
	"testing"
	"testing/quick"
)

func TestStar(t *testing.T) {
	g, err := Star{Hosts: 24}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Hosts()) != 24 || len(g.Switches()) != 1 {
		t.Fatalf("hosts=%d switches=%d", len(g.Hosts()), len(g.Switches()))
	}
	if g.NumLinks() != 24 {
		t.Errorf("links = %d", g.NumLinks())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Any host pair routes through the switch: 2 hops.
	hosts := g.Hosts()
	if hc := g.HopCount(hosts[0], hosts[23]); hc != 2 {
		t.Errorf("hop count = %d, want 2", hc)
	}
	nodes, links, err := g.Path(hosts[0], hosts[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 || len(links) != 2 {
		t.Errorf("path = %v links = %v", nodes, links)
	}
	if g.Node(nodes[1]).Kind != Switch {
		t.Error("middle node is not the switch")
	}
}

func TestStarRejectsEmpty(t *testing.T) {
	if _, err := (Star{Hosts: 0}).Build(); err == nil {
		t.Error("empty star accepted")
	}
}

func TestFatTreeK4(t *testing.T) {
	ft := FatTree{K: 4}
	g, err := ft.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Hosts()) != 16 || ft.NumHosts() != 16 {
		t.Errorf("hosts = %d, want 16", len(g.Hosts()))
	}
	if len(g.Switches()) != 20 || ft.NumSwitches() != 20 {
		t.Errorf("switches = %d, want 20", len(g.Switches()))
	}
	// k=4: links = hosts(16) + edge-agg(4 pods * 4) + agg-core(4 pods * 4) = 48.
	if g.NumLinks() != 48 {
		t.Errorf("links = %d, want 48", g.NumLinks())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	hosts := g.Hosts()
	// Same edge switch: 2 hops.
	if hc := g.HopCount(hosts[0], hosts[1]); hc != 2 {
		t.Errorf("same-edge hops = %d, want 2", hc)
	}
	// Same pod, different edge: 4 hops.
	if hc := g.HopCount(hosts[0], hosts[2]); hc != 4 {
		t.Errorf("same-pod hops = %d, want 4", hc)
	}
	// Different pods: 6 hops.
	if hc := g.HopCount(hosts[0], hosts[15]); hc != 6 {
		t.Errorf("cross-pod hops = %d, want 6", hc)
	}
}

func TestFatTreeRejectsOddK(t *testing.T) {
	if _, err := (FatTree{K: 3}).Build(); err == nil {
		t.Error("odd k accepted")
	}
	if _, err := (FatTree{K: 0}).Build(); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestFatTreeECMPUsesMultiplePaths(t *testing.T) {
	g, err := FatTree{K: 4}.Build()
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	src, dst := hosts[0], hosts[15]
	seen := make(map[NodeID]bool)
	for key := uint64(1); key <= 64; key++ {
		nodes, _, err := g.Path(src, dst, key)
		if err != nil {
			t.Fatal(err)
		}
		// Record the core switch used (middle of a 6-hop path).
		seen[nodes[3]] = true
		// All paths must be shortest.
		if len(nodes) != 7 {
			t.Fatalf("path length %d, want 7 nodes", len(nodes))
		}
	}
	if len(seen) < 2 {
		t.Errorf("ECMP explored %d core switches, want >= 2", len(seen))
	}
	// Key 0 is deterministic single-path.
	n1, _, _ := g.Path(src, dst, 0)
	n2, _, _ := g.Path(src, dst, 0)
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Error("key-0 path not deterministic")
		}
	}
}

func TestBCube(t *testing.T) {
	b := BCube{N: 4, K: 1}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Hosts()) != 16 || b.NumHosts() != 16 {
		t.Errorf("hosts = %d, want 16", len(g.Hosts()))
	}
	// BCube(4,1): 2 levels x 4 switches.
	if len(g.Switches()) != 8 {
		t.Errorf("switches = %d, want 8", len(g.Switches()))
	}
	// Each host has k+1 = 2 links.
	for _, h := range g.Hosts() {
		if g.Degree(h) != 2 {
			t.Errorf("host %d degree = %d, want 2", h, g.Degree(h))
		}
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	if !g.AllowHostTransit {
		t.Error("BCube must allow host transit (hybrid architecture)")
	}
	// Hosts 0 and 1 share a level-0 switch: 2 hops. Hosts 0 and 5
	// (digits differ in both positions) need host transit: 4 hops.
	hosts := g.Hosts()
	if hc := g.HopCount(hosts[0], hosts[1]); hc != 2 {
		t.Errorf("same-switch hops = %d, want 2", hc)
	}
	if hc := g.HopCount(hosts[0], hosts[5]); hc != 4 {
		t.Errorf("cross hops = %d, want 4", hc)
	}
}

func TestCamCube(t *testing.T) {
	c := CamCube{X: 3, Y: 3, Z: 3}
	g, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Hosts()) != 27 || len(g.Switches()) != 0 {
		t.Errorf("hosts=%d switches=%d", len(g.Hosts()), len(g.Switches()))
	}
	// 3D torus: every node has degree 6.
	for _, h := range g.Hosts() {
		if g.Degree(h) != 6 {
			t.Errorf("host %d degree = %d, want 6", h, g.Degree(h))
		}
	}
	// links = 27 * 6 / 2 = 81.
	if g.NumLinks() != 81 {
		t.Errorf("links = %d, want 81", g.NumLinks())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Torus wrap: corner to corner is 3 hops (1 per dimension via wrap).
	if hc := g.HopCount(0, g.Hosts()[26]); hc != 3 {
		t.Errorf("corner hops = %d, want 3", hc)
	}
}

func TestCamCubeDim2NoDoubleLinks(t *testing.T) {
	g, err := CamCube{X: 2, Y: 2, Z: 2}.Build()
	if err != nil {
		t.Fatal(err)
	}
	// 2x2x2 torus without duplicate links: each node degree 3, 12 links.
	for _, h := range g.Hosts() {
		if g.Degree(h) != 3 {
			t.Errorf("host %d degree = %d, want 3", h, g.Degree(h))
		}
	}
	if g.NumLinks() != 12 {
		t.Errorf("links = %d, want 12", g.NumLinks())
	}
}

func TestFlattenedButterfly(t *testing.T) {
	f := FlattenedButterfly{Rows: 2, Cols: 4, Concentration: 2}
	g, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Hosts()) != 16 {
		t.Errorf("hosts = %d, want 16", len(g.Hosts()))
	}
	if len(g.Switches()) != 8 {
		t.Errorf("switches = %d, want 8", len(g.Switches()))
	}
	// Links: host links 16 + rows 2*C(4,2)=12 + cols 4*C(2,2)... wait,
	// columns: 4 columns * C(2,2)=1 each = 4. Total 16+12+4 = 32.
	if g.NumLinks() != 32 {
		t.Errorf("links = %d, want 32", g.NumLinks())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Any two routers are at most 2 router-hops apart (one row + one
	// column move), so host-to-host <= 4 hops.
	hosts := g.Hosts()
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			if hc := g.HopCount(a, b); hc > 4 {
				t.Fatalf("hosts %d-%d: %d hops", a, b, hc)
			}
		}
	}
}

func TestHostTransitBlocked(t *testing.T) {
	// A "dumbbell" where the only path between two hosts crosses a third
	// host must be unroutable without host transit.
	g := NewGraph(false)
	h1 := g.AddNode(Host, "h1")
	mid := g.AddNode(Host, "mid")
	h2 := g.AddNode(Host, "h2")
	if _, err := g.AddLink(h1, mid, 1e9); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink(mid, h2, 1e9); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Path(h1, h2, 0); err == nil {
		t.Error("path through host allowed without host transit")
	}
	// Same shape with transit allowed routes fine.
	g2 := NewGraph(true)
	a := g2.AddNode(Host, "h1")
	m := g2.AddNode(Host, "mid")
	b := g2.AddNode(Host, "h2")
	g2.AddLink(a, m, 1e9)
	g2.AddLink(m, b, 1e9)
	if _, _, err := g2.Path(a, b, 0); err != nil {
		t.Errorf("hybrid path failed: %v", err)
	}
}

func TestGraphErrors(t *testing.T) {
	g := NewGraph(false)
	a := g.AddNode(Host, "a")
	if _, err := g.AddLink(a, a, 1e9); err == nil {
		t.Error("self loop accepted")
	}
	if _, err := g.AddLink(a, 99, 1e9); err == nil {
		t.Error("out of range accepted")
	}
	b := g.AddNode(Host, "b")
	if _, err := g.AddLink(a, b, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, _, err := g.Path(a, NodeID(99), 0); err == nil {
		t.Error("out-of-range path accepted")
	}
	if _, _, err := g.Path(a, b, 0); err == nil {
		t.Error("disconnected path accepted")
	}
	if err := g.Validate(); err == nil {
		t.Error("disconnected graph validated")
	}
	if err := NewGraph(false).Validate(); err == nil {
		t.Error("empty graph validated")
	}
}

func TestPathSelf(t *testing.T) {
	g, _ := Star{Hosts: 2}.Build()
	h := g.Hosts()[0]
	nodes, links, err := g.Path(h, h, 0)
	if err != nil || len(nodes) != 1 || len(links) != 0 {
		t.Errorf("self path = %v, %v, %v", nodes, links, err)
	}
	if g.HopCount(h, h) != 0 {
		t.Error("self hop count != 0")
	}
}

// Property: for random host pairs in a fat-tree, Path returns a valid
// shortest path: consecutive nodes joined by the reported links, length
// equal to HopCount, hosts only at the ends.
func TestPathValidityProperty(t *testing.T) {
	g, err := FatTree{K: 4}.Build()
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	f := func(a, b uint8, key uint64) bool {
		src := hosts[int(a)%len(hosts)]
		dst := hosts[int(b)%len(hosts)]
		nodes, links, err := g.Path(src, dst, key)
		if src == dst {
			return err == nil && len(nodes) == 1
		}
		if err != nil {
			return false
		}
		if len(nodes) != len(links)+1 {
			return false
		}
		if len(links) != g.HopCount(src, dst) {
			return false
		}
		for i, l := range links {
			lk := g.Link(l)
			if !(lk.A == nodes[i] && lk.B == nodes[i+1]) &&
				!(lk.B == nodes[i] && lk.A == nodes[i+1]) {
				return false
			}
		}
		for _, n := range nodes[1 : len(nodes)-1] {
			if g.Node(n).Kind != Switch {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: hop counts are symmetric in an undirected graph.
func TestHopSymmetryProperty(t *testing.T) {
	g, err := BCube{N: 3, K: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	f := func(a, b uint8) bool {
		x := hosts[int(a)%len(hosts)]
		y := hosts[int(b)%len(hosts)]
		return g.HopCount(x, y) == g.HopCount(y, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNamesAndKindString(t *testing.T) {
	if (Star{Hosts: 5}).Name() == "" || (FatTree{K: 4}).Name() == "" ||
		(BCube{N: 2, K: 1}).Name() == "" || (CamCube{X: 2, Y: 2, Z: 2}).Name() == "" ||
		(FlattenedButterfly{Rows: 2, Cols: 2, Concentration: 1}).Name() == "" {
		t.Error("empty topology name")
	}
	if Host.String() != "host" || Switch.String() != "switch" || Kind(9).String() != "Kind(9)" {
		t.Error("Kind.String broken")
	}
}
