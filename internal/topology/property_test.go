package topology

import (
	"fmt"
	"testing"
)

// Counter is the declared-size contract every builder satisfies: the
// counts promised before Build must match the graph actually built.
type counter interface {
	Topology
	NumHosts() int
	NumSwitches() int
}

// degreeSpec gives the expected degree of every node in a regular
// topology: hostDeg for hosts, switchDeg for switches. A negative value
// skips the check for that kind.
type degreeSpec struct {
	hostDeg, switchDeg int
}

// checkTopology asserts the three structural properties for one built
// instance: declared counts, full connectivity (every node reachable
// from the first host under the family's transit rules), and degree
// regularity.
func checkTopology(t *testing.T, b counter, deg degreeSpec) {
	t.Helper()
	g, err := b.Build()
	if err != nil {
		t.Fatalf("%s: %v", b.Name(), err)
	}
	hosts, switches := g.Hosts(), g.Switches()
	if len(hosts) != b.NumHosts() {
		t.Errorf("%s: built %d hosts, declared %d", b.Name(), len(hosts), b.NumHosts())
	}
	if len(switches) != b.NumSwitches() {
		t.Errorf("%s: built %d switches, declared %d", b.Name(), len(switches), b.NumSwitches())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("%s: %v", b.Name(), err)
	}
	// Connectivity: every node (not just hosts) must be reachable from
	// the first host — an unreachable switch would be dead hardware the
	// power model still bills for.
	for n := 0; n < g.NumNodes(); n++ {
		if g.HopCount(hosts[0], NodeID(n)) < 0 {
			t.Errorf("%s: node %d (%s) unreachable from host 0",
				b.Name(), n, g.Node(NodeID(n)).Name)
		}
	}
	for _, h := range hosts {
		if deg.hostDeg >= 0 && g.Degree(h) != deg.hostDeg {
			t.Errorf("%s: host %s degree %d, want %d",
				b.Name(), g.Node(h).Name, g.Degree(h), deg.hostDeg)
		}
	}
	for _, sw := range switches {
		if deg.switchDeg >= 0 && g.Degree(sw) != deg.switchDeg {
			t.Errorf("%s: switch %s degree %d, want %d",
				b.Name(), g.Node(sw).Name, g.Degree(sw), deg.switchDeg)
		}
	}
}

func TestStarProperties(t *testing.T) {
	for _, hosts := range []int{1, 2, 3, 8, 24, 64} {
		t.Run(fmt.Sprint(hosts), func(t *testing.T) {
			checkTopology(t, Star{Hosts: hosts}, degreeSpec{hostDeg: 1, switchDeg: hosts})
		})
	}
}

func TestFatTreeProperties(t *testing.T) {
	// Every switch in a k-ary fat-tree has exactly k ports: edge
	// (k/2 hosts + k/2 aggs), agg (k/2 edges + k/2 cores), core (one
	// link per pod).
	for _, k := range []int{2, 4, 6, 8} {
		t.Run(fmt.Sprint(k), func(t *testing.T) {
			f := FatTree{K: k}
			checkTopology(t, f, degreeSpec{hostDeg: 1, switchDeg: k})
			if want := k * k * k / 4; f.NumHosts() != want {
				t.Errorf("NumHosts() = %d, want k^3/4 = %d", f.NumHosts(), want)
			}
			if want := 5 * k * k / 4; f.NumSwitches() != want {
				t.Errorf("NumSwitches() = %d, want 5k^2/4 = %d", f.NumSwitches(), want)
			}
		})
	}
}

func TestBCubeProperties(t *testing.T) {
	// BCube(n, k): hosts have k+1 ports (one per level), switches n.
	for _, c := range []BCube{
		{N: 2, K: 0}, {N: 2, K: 1}, {N: 2, K: 2},
		{N: 3, K: 1}, {N: 4, K: 1}, {N: 3, K: 2},
	} {
		t.Run(c.Name(), func(t *testing.T) {
			checkTopology(t, c, degreeSpec{hostDeg: c.K + 1, switchDeg: c.N})
		})
	}
}

func TestCamCubeProperties(t *testing.T) {
	// The 3D torus links each host once per direction per dimension,
	// except that a dimension of exactly 2 collapses the +1 and −1
	// neighbors into one link.
	for _, c := range []CamCube{
		{X: 2, Y: 2, Z: 2}, {X: 3, Y: 2, Z: 2}, {X: 3, Y: 3, Z: 3},
		{X: 4, Y: 3, Z: 2}, {X: 4, Y: 4, Z: 4},
	} {
		deg := 0
		for _, dim := range [...]int{c.X, c.Y, c.Z} {
			if dim > 2 {
				deg += 2
			} else {
				deg++
			}
		}
		t.Run(c.Name(), func(t *testing.T) {
			checkTopology(t, c, degreeSpec{hostDeg: deg, switchDeg: -1})
		})
	}
}

func TestFlattenedButterflyProperties(t *testing.T) {
	// Routers connect their hosts plus every other router in their row
	// and column.
	for _, f := range []FlattenedButterfly{
		{Rows: 1, Cols: 1, Concentration: 1},
		{Rows: 2, Cols: 2, Concentration: 1},
		{Rows: 2, Cols: 3, Concentration: 2},
		{Rows: 4, Cols: 4, Concentration: 3},
	} {
		t.Run(f.Name(), func(t *testing.T) {
			swDeg := f.Concentration + (f.Rows - 1) + (f.Cols - 1)
			checkTopology(t, f, degreeSpec{hostDeg: 1, switchDeg: swDeg})
		})
	}
}

// TestBuilderParameterValidation: out-of-range shapes must error, never
// build a malformed graph or panic.
func TestBuilderParameterValidation(t *testing.T) {
	bad := []Topology{
		Star{Hosts: 0},
		FatTree{K: 3},  // odd
		FatTree{K: 0},  // below minimum
		FatTree{K: -2}, // negative
		BCube{N: 1, K: 1},
		BCube{N: 2, K: -1},
		CamCube{X: 1, Y: 2, Z: 2},
		CamCube{X: 2, Y: 2, Z: 0},
		FlattenedButterfly{Rows: 0, Cols: 1, Concentration: 1},
		FlattenedButterfly{Rows: 1, Cols: 1, Concentration: 0},
	}
	for _, b := range bad {
		if g, err := b.Build(); err == nil {
			t.Errorf("%s: Build accepted invalid parameters (graph: %d nodes)", b.Name(), g.NumNodes())
		}
	}
}
