package server

import (
	"math"
	"testing"

	"holdcsim/internal/engine"
	"holdcsim/internal/job"
	"holdcsim/internal/power"
	"holdcsim/internal/simtime"
)

func newDualSocketServer(t *testing.T) (*engine.Engine, *Server) {
	t.Helper()
	eng := engine.New()
	cfg := DefaultConfig(power.DualSocketXeon())
	s, err := New(0, eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, s
}

func TestDualSocketProfile(t *testing.T) {
	p := power.DualSocketXeon()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.SocketCount() != 2 || p.CoresPerSocket() != 10 || p.Cores != 20 {
		t.Errorf("sockets=%d cps=%d cores=%d", p.SocketCount(), p.CoresPerSocket(), p.Cores)
	}
	// Idle/max include both packages.
	single := power.XeonE5_2680()
	if p.IdleWatts() <= single.IdleWatts() {
		t.Error("dual socket idle should exceed single socket idle")
	}
	wantIdle := single.IdleWatts() + 10*single.CoreIdle + single.PkgPC0
	if math.Abs(p.IdleWatts()-wantIdle) > 1e-9 {
		t.Errorf("IdleWatts = %v, want %v", p.IdleWatts(), wantIdle)
	}
}

func TestSocketsParkIndependently(t *testing.T) {
	eng, s := newDualSocketServer(t)
	// Keep one core of socket 0 busy; socket 1 is fully idle.
	var park func()
	park = func() {
		j := job.Single(job.ID(eng.Now()), eng.Now(), 10*simtime.Millisecond)
		// Pin to socket 0 by saturating: the local scheduler picks the
		// shallowest core, which stays within socket 0 while it hosts
		// the only recently-used cores.
		s.Submit(j.Tasks[0])
		if eng.Now() < 100*simtime.Millisecond {
			eng.After(10*simtime.Millisecond, park)
		}
	}
	eng.Schedule(0, park)
	eng.RunUntil(95 * simtime.Millisecond)
	states := s.SocketStates()
	if states[1] != power.PC6 {
		t.Errorf("idle socket 1 = %v, want PC6", states[1])
	}
	if states[0] != power.PC0 {
		t.Errorf("busy socket 0 = %v, want PC0", states[0])
	}
	// Server-level PkgState is the shallowest.
	if s.PkgState() != power.PC0 {
		t.Errorf("PkgState = %v, want PC0", s.PkgState())
	}
	eng.Run()
	// Fully idle: both sockets park, label becomes PkgC6.
	eng2 := engine.New()
	s2, err := New(1, eng2, DefaultConfig(power.DualSocketXeon()))
	if err != nil {
		t.Fatal(err)
	}
	eng2.RunUntil(simtime.Second)
	if s2.PkgState() != power.PC6 {
		t.Errorf("fully idle dual socket PkgState = %v, want PC6", s2.PkgState())
	}
	if got := s2.Residency().State(); got != StatePkgC6 {
		t.Errorf("residency label = %q, want PkgC6", got)
	}
}

func TestDualSocketPowerAccounting(t *testing.T) {
	prof := power.DualSocketXeon()
	eng, s := newDualSocketServer(t)
	eng.RunUntil(simtime.Second) // both sockets parked
	// 20 cores in C6 + 2 packages in PC6 + DRAM idle + platform.
	want := 20*prof.CoreC6 + 2*prof.PkgPC6 + prof.DRAMIdle + prof.PlatformS0
	if got := s.Power(); math.Abs(got-want) > 1e-9 {
		t.Errorf("parked power = %v, want %v", got, want)
	}
}

func TestDVFSGovernorScalesWithLoad(t *testing.T) {
	eng, s := newTestServer(t, nil)
	g := NewDVFSGovernor(s)
	g.Start()

	// Phase 1: saturate all 10 cores for 200ms — governor must stay at
	// (or return to) P0.
	for i := 0; i < 10; i++ {
		j := job.Single(job.ID(i), 0, 200*simtime.Millisecond)
		eng.Schedule(0, func() { s.Submit(j.Tasks[0]) })
	}
	eng.RunUntil(200 * simtime.Millisecond)
	if g.PStateIndex() != 0 {
		t.Errorf("under saturation P-state index = %d, want 0", g.PStateIndex())
	}
	// Phase 2: idle for 500ms — governor steps down to the deepest point.
	eng.RunUntil(700 * simtime.Millisecond)
	if g.PStateIndex() != len(power.XeonE5_2680().PStates)-1 {
		t.Errorf("idle P-state index = %d, want deepest", g.PStateIndex())
	}
	if g.Steps == 0 {
		t.Error("no P-state steps recorded")
	}
	// Phase 3: saturate again — governor climbs back to P0.
	base := eng.Now()
	for i := 0; i < 10; i++ {
		j := job.Single(job.ID(100+i), base, 300*simtime.Millisecond)
		eng.Schedule(base, func() { s.Submit(j.Tasks[0]) })
	}
	eng.RunUntil(base + 250*simtime.Millisecond)
	if g.PStateIndex() != 0 {
		t.Errorf("re-saturated P-state index = %d, want 0", g.PStateIndex())
	}
	eng.RunUntil(base + 10*simtime.Second)
}

func TestDVFSGovernorDoubleStartSafe(t *testing.T) {
	eng, s := newTestServer(t, nil)
	g := NewDVFSGovernor(s)
	g.Start()
	g.Start() // must not double-schedule
	eng.RunUntil(100 * simtime.Millisecond)
	// One governor tick chain: at 10ms intervals over 100ms, ~10 ticks;
	// a double chain would step twice as often. Steps bounded by the
	// ladder depth regardless; just ensure no panic and sane state.
	if g.PStateIndex() < 0 || g.PStateIndex() >= len(power.XeonE5_2680().PStates) {
		t.Errorf("P-state index out of range: %d", g.PStateIndex())
	}
}
