package server

import (
	"holdcsim/internal/engine"
	"holdcsim/internal/job"
	"holdcsim/internal/power"
	"holdcsim/internal/simtime"
)

// Core is one processing unit: it serves one task at a time (Sec. III).
// Its performance is set by its speed ratio (heterogeneous parts) and the
// active P-state (DVFS); its idle draw follows the C-state governor.
type Core struct {
	id  int
	srv *Server

	speed     float64
	pstateIdx int

	cstate    power.CState
	busy      bool
	waking    bool
	wakeTrans power.Transition
	reserved  *job.Task // task waiting for this core's wake to finish

	task      *job.Task
	finishEv  engine.Handle
	finishCB  func() // cached completion closure, one per core
	wakeCB    func() // cached wake-completion closure, one per core
	wakeEpoch uint32 // server epoch the in-flight wake was armed under
	idleTimer *engine.Timer
	target    power.CState // next C-state the idle timer promotes into
	idleStart simtime.Time // when the current idle period began

	queue []*job.Task // per-core queue (QueuePerCore mode only)

	completed int64
}

// ID reports the core's index within its server.
func (c *Core) ID() int { return c.id }

// Speed reports the core's heterogeneous speed ratio.
func (c *Core) Speed() float64 { return c.speed }

// CState reports the core's current C-state.
func (c *Core) CState() power.CState { return c.cstate }

// Busy reports whether a task is executing.
func (c *Core) Busy() bool { return c.busy }

// Completed reports the number of tasks this core has finished.
func (c *Core) Completed() int64 { return c.completed }

// PState reports the core's active P-state.
func (c *Core) PState() power.PState { return c.srv.prof.PStates[c.pstateIdx] }

// effectiveSpeed is the product of the heterogeneous ratio and DVFS.
func (c *Core) effectiveSpeed() float64 { return c.speed * c.PState().Speed }

// available reports whether the core can accept a task right now.
func (c *Core) available() bool { return !c.busy && !c.waking && c.reserved == nil }

// assign hands the core a task. The core must be available. If the core
// (or its package) is in a sleep state, the task is reserved while the
// wake transition runs.
//simlint:hotpath
func (c *Core) assign(t *job.Task) {
	if !c.available() {
		panic("server: assign to unavailable core")
	}
	c.stopIdleTimer()
	if c.cstate == power.C0 {
		c.run(t)
		return
	}
	// Wake transition: core (plus its socket, if parked) must power up.
	trans := c.wakeTransition()
	c.waking = true
	c.wakeTrans = trans
	c.reserved = t
	c.srv.queueDelta(1)
	if sk := c.srv.socketOf(c.id); c.srv.sockets[sk] != power.PC0 {
		// The package exits PC6/PC2 as soon as any of its cores wakes.
		c.srv.setSocketState(sk, power.PC0)
	}
	c.srv.recompute()
	// One wake is in flight per core at a time (c.waking), so the armed
	// epoch lives in a field and the completion closure is cached — the
	// idle→C6→wake cycle allocates nothing.
	c.wakeEpoch = c.srv.epoch
	if c.wakeCB == nil {
		c.wakeCB = c.wakeDone
	}
	c.srv.eng.After(trans.Latency, c.wakeCB)
}

// wakeDone completes a core wake transition: the reserved task runs, or
// (if its reservation was aborted while the wake was committed) the core
// simply goes idle.
//simlint:hotpath
func (c *Core) wakeDone() {
	if c.srv.epoch != c.wakeEpoch {
		return // the server crashed mid-wake; the transition is void
	}
	c.waking = false
	c.cstate = power.C0
	task := c.reserved
	c.reserved = nil
	if task == nil {
		c.becomeIdle()
		c.srv.checkServerIdle()
		return
	}
	c.srv.queueDelta(-1)
	c.run(task)
}

// wakeTransition reports the cost of leaving the current C-state,
// including the package exit when the package is parked.
func (c *Core) wakeTransition() power.Transition {
	prof := c.srv.prof
	var t power.Transition
	switch c.cstate {
	case power.C1:
		t = prof.WakeC1
	case power.C3:
		t = prof.WakeC3
	case power.C6:
		t = prof.WakeC6
	default:
		return power.Transition{}
	}
	if c.srv.sockets[c.srv.socketOf(c.id)] == power.PC6 {
		t.Latency += prof.WakePC6.Latency
		if prof.WakePC6.Watts > t.Watts {
			t.Watts = prof.WakePC6.Watts
		}
	}
	return t
}

// run starts executing t; the core must be in C0.
//simlint:hotpath
func (c *Core) run(t *job.Task) {
	now := c.srv.eng.Now()
	c.busy = true
	c.task = t
	t.State = job.TaskRunning
	t.StartAt = now
	c.srv.busyDelta(1)
	c.srv.recompute()
	dur := t.ServiceTime(c.effectiveSpeed())
	if c.finishCB == nil {
		c.finishCB = c.finish
	}
	c.finishEv = c.srv.eng.After(dur, c.finishCB)
}

// finish completes the running task and asks the server for more work.
//simlint:hotpath
func (c *Core) finish() {
	t := c.task
	c.busy = false
	c.task = nil
	c.finishEv = engine.Handle{}
	c.completed++
	c.srv.busyDelta(-1)
	c.srv.coreFinished(c, t)
}

// abortRun cancels the running task's completion (fault retraction): the
// core pulls its next queued task or goes idle. The aborted task is not
// counted as completed.
//simlint:hotpath
func (c *Core) abortRun() {
	c.srv.eng.Cancel(c.finishEv)
	c.finishEv = engine.Handle{}
	c.busy = false
	c.task = nil
	c.srv.busyDelta(-1)
	if next := c.srv.nextFor(c); next != nil {
		c.run(next)
	} else {
		c.becomeIdle()
		c.srv.checkServerIdle()
	}
}

// becomeIdle engages the C-state governor after the core runs out of
// work.
//simlint:hotpath
func (c *Core) becomeIdle() {
	c.cstate = power.C0
	c.idleStart = c.srv.eng.Now()
	c.srv.recompute()
	c.armIdleStep()
}

// armIdleStep schedules the next enabled C-state promotion. Thresholds
// are absolute from the start of the idle period, so disabling an
// intermediate state (e.g. a C0/C6-only validation run) skips straight
// to the next enabled one.
func (c *Core) armIdleStep() {
	cfg := &c.srv.cfg
	elapsed := c.srv.eng.Now() - c.idleStart
	steps := []struct {
		state power.CState
		at    simtime.Time
	}{
		{power.C1, cfg.IdleToC1},
		{power.C3, cfg.IdleToC3},
		{power.C6, cfg.IdleToC6},
	}
	for _, s := range steps {
		if s.at < 0 || s.state <= c.cstate {
			continue
		}
		wait := s.at - elapsed
		if wait < 0 {
			wait = 0
		}
		if c.idleTimer == nil {
			c.idleTimer = engine.NewTimer(c.srv.eng, func() { c.idleStep() })
		}
		c.target = s.state
		c.idleTimer.Reset(wait)
		return
	}
}

// idleStep promotes the core into the pending deeper C-state.
func (c *Core) idleStep() {
	if c.busy || c.waking {
		return // stale timer; a task grabbed the core first
	}
	c.cstate = c.target
	c.srv.recompute()
	if c.cstate == power.C6 {
		c.srv.maybePkgC6()
	}
	c.armIdleStep()
}

func (c *Core) stopIdleTimer() {
	if c.idleTimer != nil {
		c.idleTimer.Stop()
	}
}

// park forces the core into C6 without timers (used when the whole
// server enters a system sleep state).
func (c *Core) park() {
	c.stopIdleTimer()
	c.cstate = power.C6
}
