package server

import (
	"testing"

	"holdcsim/internal/modelcov"
)

// modelcov cannot import this package (we import it), so its residency
// state table is a duplicate of the State* labels above. Pin the two
// tables together: a new or renamed residency label must be mirrored in
// modelcov or its transitions silently vanish from the coverage map.
func TestModelcovKnowsEveryResidencyLabel(t *testing.T) {
	labels := []string{StateActive, StateWakeUp, StateIdle, StatePkgC6,
		StateSysSleep, StateOff, StateDown}
	if len(labels) != modelcov.NumSrvStates {
		t.Fatalf("server has %d residency labels, modelcov expects %d",
			len(labels), modelcov.NumSrvStates)
	}
	seen := make(map[int]string, len(labels))
	for _, l := range labels {
		i := modelcov.SrvStateIndex(l)
		if i < 0 {
			t.Fatalf("modelcov does not know residency label %q", l)
		}
		if prev, dup := seen[i]; dup {
			t.Fatalf("labels %q and %q map to the same index %d", prev, l, i)
		}
		seen[i] = l
	}
}
