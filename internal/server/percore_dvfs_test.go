package server

import (
	"math"
	"testing"

	"holdcsim/internal/power"
)

func TestPerCoreDVFS(t *testing.T) {
	prof := power.XeonE5_2680()
	eng, s := newTestServer(t, func(c *Config) {
		// Freeze the governor so idle draws stay at C0-idle and the
		// power delta comes from the P-state alone.
		c.IdleToC1 = -1
		c.IdleToC3 = -1
		c.IdleToC6 = -1
		c.PkgC6Enabled = false
	})
	eng.RunUntil(simtimeMillisecond)
	base := s.CPUPower()
	wantBase := 10*prof.CoreIdle + prof.PkgPC0
	if math.Abs(base-wantBase) > 1e-9 {
		t.Fatalf("base CPU power = %v, want %v", base, wantBase)
	}
	// Slowing one idle core does not change idle draw (P-state scales
	// active power only), but the core's PState must change.
	if err := s.SetCorePState(3, 3); err != nil {
		t.Fatal(err)
	}
	if got := s.Core(3).PState().Name; got != "P3" {
		t.Errorf("core 3 P-state = %s, want P3", got)
	}
	if got := s.Core(0).PState().Name; got != "P0" {
		t.Errorf("core 0 P-state = %s, want P0", got)
	}
	// Errors.
	if err := s.SetCorePState(99, 0); err == nil {
		t.Error("out-of-range core accepted")
	}
	if err := s.SetCorePState(0, 99); err == nil {
		t.Error("out-of-range P-state accepted")
	}
}

func TestGlobalStateReporting(t *testing.T) {
	eng, s := newTestServer(t, nil)
	if s.GlobalState() != power.G0 {
		t.Errorf("working global state = %v, want G0", s.GlobalState())
	}
	eng.RunUntil(simtimeMillisecond)
	s.ForceSleep()
	eng.RunUntil(5 * simtimeSecond)
	if s.GlobalState() != power.G1 {
		t.Errorf("sleeping global state = %v, want G1", s.GlobalState())
	}
}

// Local aliases keep the test body terse.
const (
	simtimeMillisecond = 1000 * 1000
	simtimeSecond      = 1000 * simtimeMillisecond
)
