package server

// CorruptQueueCounterForTest skews the incremental queue counter
// without touching the underlying queue structures, seeding exactly the
// desync the invariant checker's queue-counter law exists to catch.
// Test-only: the production code has no path that moves the counter
// independently of the queues.
func (s *Server) CorruptQueueCounterForTest(d int) { s.queueLen += d }
