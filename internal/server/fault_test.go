package server

import (
	"testing"

	"holdcsim/internal/engine"
	"holdcsim/internal/job"
	"holdcsim/internal/power"
	"holdcsim/internal/simtime"
)

func faultServer(t *testing.T) (*engine.Engine, *Server) {
	t.Helper()
	eng := engine.New()
	srv, err := New(0, eng, DefaultConfig(power.FourCoreServer()))
	if err != nil {
		t.Fatal(err)
	}
	return eng, srv
}

// TestCrashOrphansAndZeroPower: a crash returns every queued, reserved
// and running task exactly once, cancels the running completions, and
// the server draws nothing while down.
func TestCrashOrphansAndZeroPower(t *testing.T) {
	eng, srv := faultServer(t)
	var finished int
	srv.OnTaskDone(func(*Server, *job.Task) { finished++ })
	const n = 6 // 4 cores busy + 2 queued
	for i := 0; i < n; i++ {
		j := job.Single(job.ID(i), 0, 100*simtime.Millisecond)
		task := j.Tasks[0]
		eng.Schedule(0, func() { srv.Submit(task) })
	}
	var orphans []*job.Task
	eng.Schedule(50*simtime.Millisecond, func() { orphans = srv.Crash() })
	eng.RunUntil(simtime.Second)

	if len(orphans) != n {
		t.Fatalf("orphans = %d, want %d", len(orphans), n)
	}
	seen := map[*job.Task]bool{}
	for _, task := range orphans {
		if seen[task] {
			t.Errorf("task %s orphaned twice", task.Name())
		}
		seen[task] = true
	}
	if finished != 0 {
		t.Errorf("%d tasks finished despite the crash", finished)
	}
	if !srv.Failed() {
		t.Fatal("server not failed after Crash")
	}
	if got := srv.Power(); got != 0 {
		t.Errorf("failed server draws %g W, want 0", got)
	}
	if srv.BusyCores() != 0 || srv.QueueLen() != 0 || srv.PendingTasks() != 0 {
		t.Errorf("failed server still holds work: busy=%d queue=%d", srv.BusyCores(), srv.QueueLen())
	}
	// Crash is idempotent.
	if again := srv.Crash(); again != nil {
		t.Errorf("second Crash returned %d orphans", len(again))
	}
}

// TestDownResidencyAndEnergyExclusion: the outage bills to the Down
// residency state and contributes zero joules.
func TestDownResidencyAndEnergyExclusion(t *testing.T) {
	eng, srv := faultServer(t)
	eng.Schedule(simtime.Second, func() { srv.Crash() })
	eng.Schedule(3*simtime.Second, func() { srv.Recover() })
	// Drive the clock to 4 s: 1 s up, 2 s down, 1 s up.
	eng.Schedule(4*simtime.Second, func() {})
	eng.Run()
	end := eng.Now()
	fr := srv.Residency().FractionsTo(end)
	if down := fr[StateDown]; down < 0.49 || down > 0.51 {
		t.Errorf("Down fraction = %g, want ~0.5", down)
	}
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("residency fractions sum to %g", sum)
	}
	// Energy for 2 up-seconds of idle must be far below 4 s of idle
	// power — and exactly equal to a 2 s idle integral.
	idle2s := srv.EnergyTo(end)
	if idle2s <= 0 {
		t.Fatalf("energy = %g", idle2s)
	}
	perUpSec := idle2s / 2
	// The profile's idle draw is tens of watts; a server billed during
	// its outage would show ~2x this figure.
	if perUpSec <= 0 || idle2s > perUpSec*2*1.001 {
		t.Errorf("energy %g J inconsistent with down-time exclusion", idle2s)
	}
}

// TestRecoverRestoresService: after Recover the server accepts and
// completes work again, from a clean idle state.
func TestRecoverRestoresService(t *testing.T) {
	eng, srv := faultServer(t)
	var finished int
	srv.OnTaskDone(func(*Server, *job.Task) { finished++ })
	eng.Schedule(0, func() { srv.Crash() })
	eng.Schedule(10*simtime.Millisecond, func() { srv.Recover() })
	j := job.Single(1, 0, 5*simtime.Millisecond)
	task := j.Tasks[0]
	eng.Schedule(20*simtime.Millisecond, func() { srv.Submit(task) })
	eng.Run()
	if srv.Failed() {
		t.Fatal("server still failed after Recover")
	}
	if finished != 1 {
		t.Fatalf("finished = %d, want 1", finished)
	}
	if srv.SystemState() != power.S0 {
		t.Errorf("system state %v after recovery, want S0", srv.SystemState())
	}
}

// TestCrashVoidsInFlightTransitions: a crash during a suspend (or the
// subsequent wake) leaves no stale transition behind — the epoch guard
// makes the pending completion inert, and a recover rebuilds a clean S0.
func TestCrashVoidsInFlightTransitions(t *testing.T) {
	eng := engine.New()
	cfg := DefaultConfig(power.FourCoreServer())
	cfg.DelayTimerEnabled = true
	cfg.DelayTimer = simtime.Millisecond
	srv, err := New(0, eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The idle server arms its delay timer at t=0 and starts suspending
	// at 1 ms. SleepEntry latency is long enough that a crash at 1.5 ms
	// lands mid-entry.
	eng.Schedule(simtime.Millisecond+500*simtime.Microsecond, func() {
		if !srv.EnteringSleep() {
			t.Fatal("server not mid-suspend; adjust timing")
		}
		srv.Crash()
	})
	eng.Schedule(5*simtime.Second, func() { srv.Recover() })
	// Probe just after recovery, before the re-armed delay timer can
	// start a fresh (legitimate) suspend.
	eng.Schedule(5*simtime.Second+100*simtime.Microsecond, func() {
		if srv.Failed() || srv.SystemState() != power.S0 || srv.EnteringSleep() || srv.Waking() {
			t.Errorf("stale transition state after crash+recover: failed=%v sstate=%v entering=%v waking=%v",
				srv.Failed(), srv.SystemState(), srv.EnteringSleep(), srv.Waking())
		}
	})
	eng.Run()
	// The delay timer re-armed at recovery: the server ends in a fresh,
	// policy-driven S3 — proof the stale pre-crash suspend never landed
	// (it would have fired mid-outage and tripped the failed checks).
	if srv.Failed() {
		t.Error("server failed at end")
	}
}

// TestAbortRunning: aborting a mid-run task cancels its completion and
// the core pulls the next queued task.
func TestAbortRunning(t *testing.T) {
	eng := engine.New()
	prof := power.FourCoreServer()
	prof.Cores = 1
	srv, err := New(0, eng, DefaultConfig(prof))
	if err != nil {
		t.Fatal(err)
	}
	var doneTasks []*job.Task
	var doneAt simtime.Time
	srv.OnTaskDone(func(_ *Server, task *job.Task) {
		doneTasks = append(doneTasks, task)
		doneAt = eng.Now()
	})
	a := job.Single(1, 0, 100*simtime.Millisecond).Tasks[0]
	b := job.Single(2, 0, 10*simtime.Millisecond).Tasks[0]
	eng.Schedule(0, func() { srv.Submit(a); srv.Submit(b) })
	eng.Schedule(20*simtime.Millisecond, func() {
		if !srv.Abort(a) {
			t.Fatal("Abort did not find the running task")
		}
	})
	eng.Run()
	if len(doneTasks) != 1 || doneTasks[0] != b {
		t.Fatalf("done = %v, want just the queued successor", doneTasks)
	}
	// The abort happened at 20 ms; b started right then and ran 10 ms.
	if doneAt != 30*simtime.Millisecond {
		t.Errorf("b finished at %v, want 30ms (started at the abort)", doneAt)
	}
	if srv.Abort(a) {
		t.Error("second Abort of the same task reported success")
	}
}

// TestAbortQueuedAndReserved covers the non-running Abort paths: a task
// waiting in a per-core queue, a task reserved behind a core wake, and
// a miss on a foreign task.
func TestAbortQueuedAndReserved(t *testing.T) {
	eng := engine.New()
	prof := power.FourCoreServer()
	prof.Cores = 1
	cfg := DefaultConfig(prof)
	cfg.QueueMode = QueuePerCore
	srv, err := New(0, eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	running := job.Single(1, 0, 50*simtime.Millisecond).Tasks[0]
	queued := job.Single(2, 0, 50*simtime.Millisecond).Tasks[0]
	foreign := job.Single(3, 0, simtime.Millisecond).Tasks[0]
	eng.Schedule(0, func() {
		srv.Submit(running)
		srv.Submit(queued)
		if !srv.Abort(queued) {
			t.Error("Abort missed the per-core queued task")
		}
		if srv.Abort(foreign) {
			t.Error("Abort found a never-submitted task")
		}
	})
	eng.Run()

	// Reserved path: let the core reach a deep C-state, then submit — the
	// task reserves the core during its wake; abort it mid-wake.
	reserved := job.Single(4, 0, simtime.Millisecond).Tasks[0]
	var completions int
	srv.OnTaskDone(func(*Server, *job.Task) { completions++ })
	start := eng.Now() + 10*simtime.Millisecond // past IdleToC6
	eng.Schedule(start, func() {
		srv.Submit(reserved)
		if reserved.State != job.TaskQueued {
			t.Fatalf("reserved task state %v", reserved.State)
		}
		if !srv.Abort(reserved) {
			t.Error("Abort missed the reserved task")
		}
	})
	eng.Run()
	if completions != 0 {
		t.Errorf("%d completions after aborting the reservation", completions)
	}
	if srv.BusyCores() != 0 || srv.PendingTasks() != 0 {
		t.Errorf("core stuck after aborted reservation: busy=%d pending=%d",
			srv.BusyCores(), srv.PendingTasks())
	}
}
