package server_test

import (
	"testing"

	"holdcsim/internal/engine"
	"holdcsim/internal/invariant"
	"holdcsim/internal/power"
	"holdcsim/internal/rng"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/workload"
)

// buildScanRig wires a small data center with a bounded-scan checker:
// deep scans visit at most 4 servers per observation boundary instead
// of all 64.
func buildScanRig(t *testing.T) (*engine.Engine, []*server.Server, *workload.Generator, *invariant.Checker) {
	t.Helper()
	const n = 64
	eng := engine.New()
	farm := make([]*server.Server, n)
	for i := range farm {
		srv, err := server.New(i, eng, server.DefaultConfig(power.FourCoreServer()))
		if err != nil {
			t.Fatal(err)
		}
		farm[i] = srv
	}
	s, err := sched.New(eng, farm, sched.Config{})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(eng, rng.New(11), workload.Poisson{Rate: 2000},
		workload.SingleTask{Service: workload.WebSearchService()}, s.JobArrived)
	gen.MaxJobs = 400
	c := invariant.Attach(eng, gen, s, farm, nil, invariant.Options{
		SampleEvery: 1, ScanBudget: 4,
	})
	return eng, farm, gen, c
}

// Tamper gate for the bounded deep scan: a corrupted per-server queue
// counter must still be detected even though each scan samples only a
// handful of servers — the rotating cursor guarantees every server is
// eventually visited even if dispatch traffic never marks it dirty.
func TestSampledScanCatchesCorruptedCounter(t *testing.T) {
	eng, farm, gen, c := buildScanRig(t)
	farm[37].CorruptQueueCounterForTest(3)
	gen.Start()
	eng.Run()
	c.Finalize(eng.Now())
	found := false
	for _, v := range c.Violations() {
		if v.Law == "queue-counter" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("corrupted queue counter on server 37 escaped the sampled deep scan: %v", c.Violations())
	}
}

// The same bounded rig without tampering must stay clean — sampling
// must not introduce false positives.
func TestSampledScanCleanRun(t *testing.T) {
	eng, _, gen, c := buildScanRig(t)
	gen.Start()
	eng.Run()
	if v := c.Finalize(eng.Now()); len(v) != 0 {
		t.Fatalf("clean bounded-scan run reported violations: %v", v)
	}
}
