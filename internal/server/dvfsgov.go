package server

import (
	"holdcsim/internal/simtime"
	"holdcsim/internal/stats"
)

// DVFSGovernor adjusts a server's P-state at runtime from observed core
// utilization — the "performance states can be configured to determine
// the speed of instruction execution at runtime (i.e., DVFS)" knob of
// paper Sec. III-A, packaged as an ondemand-style controller: utilization
// above UpThreshold steps the frequency up (lower P-state index), below
// DownThreshold steps it down.
type DVFSGovernor struct {
	srv *Server

	// Interval between evaluations.
	Interval simtime.Time
	// UpThreshold and DownThreshold bound the target utilization band.
	UpThreshold   float64
	DownThreshold float64

	busy     *stats.TimeWeighted
	lastInt  float64
	lastEval simtime.Time
	pidx     int
	running  bool

	// Steps counts P-state changes, for diagnostics.
	Steps int64
}

// NewDVFSGovernor attaches an ondemand-style governor to a server with a
// 10 ms evaluation period and a 40–80% utilization band. Call Start to
// begin.
func NewDVFSGovernor(srv *Server) *DVFSGovernor {
	g := &DVFSGovernor{
		srv:           srv,
		Interval:      10 * simtime.Millisecond,
		UpThreshold:   0.80,
		DownThreshold: 0.40,
		busy:          stats.NewTimeWeighted("dvfs-busy"),
	}
	return g
}

// Start begins periodic evaluation. The server starts at its current
// P-state (index 0, nominal, unless changed).
func (g *DVFSGovernor) Start() {
	if g.running {
		return
	}
	g.running = true
	g.srv.onBusyChange = func(now simtime.Time, busy int) {
		g.busy.Set(now, float64(busy))
	}
	g.busy.Set(g.srv.eng.Now(), float64(g.srv.BusyCores()))
	g.lastEval = g.srv.eng.Now()
	g.srv.eng.After(g.Interval, g.tick)
}

// PStateIndex reports the governor's current operating point.
func (g *DVFSGovernor) PStateIndex() int { return g.pidx }

func (g *DVFSGovernor) tick() {
	now := g.srv.eng.Now()
	integral := g.busy.IntegralTo(now)
	window := (now - g.lastEval).Seconds()
	util := 0.0
	if window > 0 {
		util = (integral - g.lastInt) / window / float64(g.srv.Cores())
	}
	g.lastInt = integral
	g.lastEval = now

	nStates := len(g.srv.prof.PStates)
	switch {
	case util > g.UpThreshold && g.pidx > 0:
		g.pidx--
		g.Steps++
		_ = g.srv.SetPState(g.pidx)
	case util < g.DownThreshold && g.pidx < nStates-1:
		g.pidx++
		g.Steps++
		_ = g.srv.SetPState(g.pidx)
	}
	g.srv.eng.After(g.Interval, g.tick)
}
