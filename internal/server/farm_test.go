package server

import (
	"testing"

	"holdcsim/internal/engine"
	"holdcsim/internal/job"
	"holdcsim/internal/power"
	"holdcsim/internal/simtime"
)

func farmConfig(mutate func(*Config)) Config {
	cfg := DefaultConfig(power.XeonE5_2680())
	if mutate != nil {
		mutate(&cfg)
	}
	return cfg
}

// The shared sleep planner must reproduce the standalone per-server timer
// behavior exactly: same suspend instants, same wake counts, same
// residency durations, same energy — byte-identical, since goldens pin
// farm-built runs.
func TestFarmMatchesStandaloneSleepTransitions(t *testing.T) {
	const n = 8
	mutate := func(c *Config) {
		c.DelayTimerEnabled = true
		c.DelayTimer = 2 * simtime.Millisecond
	}

	build := func(useFarm bool) (*engine.Engine, []*Server) {
		eng := engine.New()
		srvs := make([]*Server, n)
		var farm *Farm
		if useFarm {
			farm = NewFarm(eng)
		}
		for i := 0; i < n; i++ {
			var s *Server
			var err error
			if useFarm {
				s, err = farm.Add(i, farmConfig(mutate))
			} else {
				s, err = New(i, eng, farmConfig(mutate))
			}
			if err != nil {
				t.Fatal(err)
			}
			srvs[i] = s
		}
		// Staggered bursts exercise arm, disarm-on-submit, re-arm, suspend
		// and wake-from-S3 across overlapping deadlines.
		for i, s := range srvs {
			s := s
			at := simtime.Time(i) * 500 * simtime.Microsecond
			jb := job.Single(job.ID(i), at, simtime.Millisecond)
			eng.Schedule(at, func() { s.Submit(jb.Tasks[0]) })
			// A second task after the server has gone back to sleep forces
			// a wake transition through the planner-managed path.
			at2 := at + 10*simtime.Millisecond
			jb2 := job.Single(job.ID(100+i), at2, simtime.Millisecond)
			eng.Schedule(at2, func() { s.Submit(jb2.Tasks[0]) })
		}
		eng.Run()
		return eng, srvs
	}

	engA, farmSrvs := build(true)
	engB, soloSrvs := build(false)
	if engA.Now() != engB.Now() {
		t.Fatalf("end times differ: farm %v standalone %v", engA.Now(), engB.Now())
	}
	end := engA.Now()
	states := []string{StateActive, StateWakeUp, StateIdle, StatePkgC6, StateSysSleep}
	for i := range farmSrvs {
		f, s := farmSrvs[i], soloSrvs[i]
		if f.WakeCount() != s.WakeCount() {
			t.Errorf("server %d wake count: farm %d standalone %d", i, f.WakeCount(), s.WakeCount())
		}
		if f.CompletedTasks() != s.CompletedTasks() {
			t.Errorf("server %d completed: farm %d standalone %d", i, f.CompletedTasks(), s.CompletedTasks())
		}
		for _, st := range states {
			if df, ds := f.Residency().DurationTo(st, end), s.Residency().DurationTo(st, end); df != ds {
				t.Errorf("server %d residency %s: farm %v standalone %v", i, st, df, ds)
			}
		}
		if ef, es := f.EnergyTo(end), s.EnergyTo(end); ef != es {
			t.Errorf("server %d energy: farm %v standalone %v (must be bit-identical)", i, ef, es)
		}
	}
}

// Once every farm server is asleep, the engine must hold zero queued
// events — the per-idle-server O(1) claim. The planner heap may keep
// stale entries but no event.
func TestFarmAsleepZeroQueuedEvents(t *testing.T) {
	eng := engine.New()
	farm := NewFarm(eng)
	const n = 64
	for i := 0; i < n; i++ {
		if _, err := farm.Add(i, farmConfig(func(c *Config) {
			c.DelayTimerEnabled = true
			c.DelayTimer = simtime.Millisecond
		})); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	for i := 0; i < n; i++ {
		if !farm.Server(i).Asleep() {
			t.Fatalf("server %d not asleep after drain", i)
		}
	}
	if got := eng.Len(); got != 0 {
		t.Fatalf("engine holds %d live events with the whole farm asleep, want 0", got)
	}
	if farm.SleepTimerArmed() {
		t.Fatalf("planner timer still armed with empty schedule")
	}
}

// Arm/disarm churn must not grow the planner heap unboundedly: lazy
// deletion is compacted once stale entries dominate.
func TestSleepPlannerCompaction(t *testing.T) {
	eng := engine.New()
	farm := NewFarm(eng)
	s, err := farm.Add(0, farmConfig(func(c *Config) {
		c.DelayTimerEnabled = true
		c.DelayTimer = simtime.Millisecond
	}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		farm.planner.arm(s, simtime.Time(i))
	}
	if got := farm.SleepHeapLen(); got > 256 {
		t.Fatalf("planner heap grew to %d entries after re-arm churn, want bounded", got)
	}
	farm.planner.disarm(s)
	if s.sleepArmed {
		t.Fatalf("disarm left server armed")
	}
}

// The farm's incremental aggregates must match per-server recounts at
// completion boundaries and at the end of the run.
func TestFarmAggregatesMatchRecount(t *testing.T) {
	eng := engine.New()
	farm := NewFarm(eng)
	const n = 4
	for i := 0; i < n; i++ {
		mode := QueueUnified
		if i%2 == 1 {
			mode = QueuePerCore
		}
		if _, err := farm.Add(i, farmConfig(func(c *Config) {
			c.QueueMode = mode
			c.DelayTimerEnabled = true
			c.DelayTimer = 3 * simtime.Millisecond
		})); err != nil {
			t.Fatal(err)
		}
	}
	check := func(where string) {
		var pending, completed int64
		for i := 0; i < n; i++ {
			s := farm.Server(i)
			if got, want := s.QueueLen(), s.RecountQueueLen(); got != want {
				t.Fatalf("%s: server %d QueueLen %d != recount %d", where, i, got, want)
			}
			if got, want := farm.PendingOf(i), s.PendingTasks(); got != want {
				t.Fatalf("%s: server %d farm pending %d != PendingTasks %d", where, i, got, want)
			}
			pending += int64(s.PendingTasks())
			completed += s.CompletedTasks()
		}
		if farm.TotalPending() != pending {
			t.Fatalf("%s: TotalPending %d != sum %d", where, farm.TotalPending(), pending)
		}
		if farm.TotalCompleted() != completed {
			t.Fatalf("%s: TotalCompleted %d != sum %d", where, farm.TotalCompleted(), completed)
		}
	}
	tid := 0
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			s := farm.Server(i)
			for k := 0; k < 14; k++ { // oversubscribe: queues + reservations
				tid++
				jb := job.Single(job.ID(tid), eng.Now(), simtime.Millisecond)
				s.Submit(jb.Tasks[0])
			}
		}
		check("after submit burst")
		for eng.Step() {
			if eng.Len()%7 == 0 {
				check("mid-drain")
			}
		}
		check("after drain")
	}
	// Fault paths: crash drops all local state; the aggregates must follow.
	sFail := farm.Server(1)
	for k := 0; k < 9; k++ {
		tid++
		jb := job.Single(job.ID(tid), eng.Now(), simtime.Millisecond)
		sFail.Submit(jb.Tasks[0])
	}
	orphans := sFail.Crash()
	if len(orphans) == 0 {
		t.Fatalf("crash returned no orphans")
	}
	check("after crash")
	sFail.Recover()
	check("after recover")
	eng.Run()
	check("final")
}

// Satellite bugfix: with DelayTimerEnabled=false the server must never
// allocate a delay timer nor touch one on the submit path — a full
// idle→busy→idle cycle in steady state allocates nothing server-side.
func TestNoDelayTimerWhenDisabled(t *testing.T) {
	eng, s := newTestServer(t, func(c *Config) { c.DelayTimerEnabled = false })
	jb := job.Single(1, 0, simtime.Millisecond)
	tk := jb.Tasks[0]
	cycle := func() {
		s.Submit(tk)
		eng.Run()
	}
	// Warm pools, residency keys, idle timers, and the event ladder's
	// early growth (bucket windows allocate amortized-rarely as sim time
	// advances; 256 cycles puts that well past the measured region).
	for i := 0; i < 256; i++ {
		cycle()
	}
	if s.delayTimer != nil {
		t.Fatalf("delay timer allocated despite DelayTimerEnabled=false")
	}
	if _, armed := s.SleepDeadline(); armed {
		t.Fatalf("sleep armed despite DelayTimerEnabled=false")
	}
	allocs := testing.AllocsPerRun(100, cycle)
	if allocs != 0 {
		t.Fatalf("idle→busy→idle cycle allocates %v per cycle with delay timer disabled, want 0", allocs)
	}
}

// SetDelayTimer at runtime (the dual-timer re-partition path) must work
// through the lazy/planner machinery in both directions.
func TestSetDelayTimerLazyArm(t *testing.T) {
	for _, useFarm := range []bool{false, true} {
		eng := engine.New()
		var s *Server
		var err error
		if useFarm {
			s, err = NewFarm(eng).Add(0, farmConfig(nil))
		} else {
			s, err = New(0, eng, farmConfig(nil))
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, armed := s.SleepDeadline(); armed {
			t.Fatalf("farm=%v: armed with delay timer disabled", useFarm)
		}
		s.SetDelayTimer(true, 5*simtime.Millisecond)
		if at, armed := s.SleepDeadline(); !armed || at != eng.Now()+5*simtime.Millisecond {
			t.Fatalf("farm=%v: deadline = (%v,%v), want (+5ms,true)", useFarm, at, armed)
		}
		s.SetDelayTimer(false, 0)
		if _, armed := s.SleepDeadline(); armed {
			t.Fatalf("farm=%v: still armed after disable", useFarm)
		}
		s.SetDelayTimer(true, simtime.Millisecond)
		eng.Run()
		if !s.Asleep() {
			t.Fatalf("farm=%v: server did not suspend", useFarm)
		}
	}
}
