package server

import (
	"math"
	"testing"

	"holdcsim/internal/job"
	"holdcsim/internal/power"
	"holdcsim/internal/simtime"
)

func TestDVFSPowerScaling(t *testing.T) {
	prof := power.XeonE5_2680()
	eng, s := newTestServer(t, nil)
	if err := s.SetPState(2); err != nil { // P2: 0.70 speed, 0.343 power
		t.Fatal(err)
	}
	submitSingle(eng, s, 1, simtime.Millisecond, 70*simtime.Millisecond)
	eng.RunUntil(20 * simtime.Millisecond)
	// One busy core at P2 scale; remaining cores in C-states.
	cpu := s.CPUPower()
	wantBusyCore := prof.CoreActive * 0.7 * 0.7 * 0.7
	// CPU power = busy core + 9 parked cores + package; parked cores are
	// in C6 by 20ms (governor), package PC0 while any core busy.
	want := wantBusyCore + 9*prof.CoreC6 + prof.PkgPC0
	if math.Abs(cpu-want) > 1e-9 {
		t.Errorf("CPU power at P2 = %v, want %v", cpu, want)
	}
	eng.Run()
}

func TestIntensityWithDVFS(t *testing.T) {
	// A memory-bound task (intensity 0.25) slows down less under DVFS
	// than a compute-bound one.
	eng, s := newTestServer(t, nil)
	if err := s.SetPState(3); err != nil { // 0.55 speed
		t.Fatal(err)
	}
	var done []simtime.Time
	s.OnTaskDone(func(_ *Server, tk *job.Task) { done = append(done, eng.Now()) })

	jc := job.New(1, 0)
	compute := jc.AddTask(11*simtime.Millisecond, "")
	if err := jc.Seal(); err != nil {
		t.Fatal(err)
	}
	jm := job.New(2, 0)
	memory := jm.AddTask(11*simtime.Millisecond, "")
	memory.Intensity = 0.25
	if err := jm.Seal(); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(0, func() { s.Submit(compute) })
	eng.Schedule(0, func() { s.Submit(memory) })
	eng.Run()
	if len(done) != 2 {
		t.Fatalf("completions = %d", len(done))
	}
	// Compute-bound: 11ms/0.55 = 20ms. Memory-bound: 11ms*(0.25/0.55+0.75)
	// = 13.25ms. Both gain the C1 exit latency.
	wake := power.XeonE5_2680().WakeC1.Latency
	wantCompute := simtime.FromSeconds(0.011/0.55) + wake
	wantMemory := simtime.FromSeconds(0.011*(0.25/0.55+0.75)) + wake
	// done[0] is the earlier completion (memory-bound).
	if done[0] != wantMemory {
		t.Errorf("memory-bound finished at %v, want %v", done[0], wantMemory)
	}
	if done[1] != wantCompute {
		t.Errorf("compute-bound finished at %v, want %v", done[1], wantCompute)
	}
}

func TestMultipleTaskDoneSubscribers(t *testing.T) {
	eng, s := newTestServer(t, nil)
	var order []string
	s.OnTaskDone(func(*Server, *job.Task) { order = append(order, "first") })
	s.OnTaskDone(func(*Server, *job.Task) { order = append(order, "second") })
	submitSingle(eng, s, 1, 0, simtime.Millisecond)
	eng.Run()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Errorf("subscriber order = %v", order)
	}
}

func TestIdleGovernorSkipsDisabledStates(t *testing.T) {
	// C0/C6-only configuration (the Fig. 12 validation setup): the
	// governor must promote straight to C6 even though C1/C3 are
	// disabled.
	eng, s := newTestServer(t, func(c *Config) {
		c.IdleToC1 = -1
		c.IdleToC3 = -1
		c.IdleToC6 = 200 * simtime.Microsecond
	})
	eng.RunUntil(100 * simtime.Microsecond)
	if got := s.Core(0).CState(); got != power.C0 {
		t.Errorf("at 100us: %v, want C0 (C1/C3 disabled)", got)
	}
	eng.RunUntil(300 * simtime.Microsecond)
	if got := s.Core(0).CState(); got != power.C6 {
		t.Errorf("at 300us: %v, want C6", got)
	}
}

func TestGovernorFullyDisabled(t *testing.T) {
	eng, s := newTestServer(t, func(c *Config) {
		c.IdleToC1 = -1
		c.IdleToC3 = -1
		c.IdleToC6 = -1
		c.PkgC6Enabled = false
	})
	eng.RunUntil(simtime.Second)
	for i := 0; i < s.Cores(); i++ {
		if got := s.Core(i).CState(); got != power.C0 {
			t.Errorf("core %d = %v, want C0 forever", i, got)
		}
	}
	if s.PkgState() != power.PC0 {
		t.Errorf("package = %v, want PC0", s.PkgState())
	}
	// Idle draw must equal the Active-Idle profile figure.
	prof := power.XeonE5_2680()
	if got := s.Power(); math.Abs(got-prof.IdleWatts()) > 1e-9 {
		t.Errorf("power = %v, want IdleWatts %v", got, prof.IdleWatts())
	}
}
