package server

import (
	"math"
	"testing"
	"testing/quick"

	"holdcsim/internal/engine"
	"holdcsim/internal/job"
	"holdcsim/internal/power"
	"holdcsim/internal/simtime"
)

func newTestServer(t *testing.T, mutate func(*Config)) (*engine.Engine, *Server) {
	t.Helper()
	eng := engine.New()
	cfg := DefaultConfig(power.XeonE5_2680())
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(0, eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, s
}

func submitSingle(eng *engine.Engine, s *Server, id job.ID, at, size simtime.Time) *job.Job {
	j := job.Single(id, at, size)
	eng.Schedule(at, func() { s.Submit(j.Tasks[0]) })
	return j
}

func TestSingleTaskExecution(t *testing.T) {
	eng, s := newTestServer(t, nil)
	j := submitSingle(eng, s, 1, 0, 5*simtime.Millisecond)
	var done []simtime.Time
	s.OnTaskDone(func(_ *Server, tk *job.Task) { done = append(done, eng.Now()) })
	eng.Run()
	if len(done) != 1 {
		t.Fatalf("completions = %d", len(done))
	}
	// The idle governor promotes cores to C1 via a zero-delay event that
	// fires before the t=0 submission, so the task pays the C1 exit.
	want := 5*simtime.Millisecond + power.XeonE5_2680().WakeC1.Latency
	if done[0] != want {
		t.Errorf("finished at %v, want %v", done[0], want)
	}
	if j.Tasks[0].State != job.TaskRunning {
		// The server marks it running; job completion bookkeeping is the
		// data center layer's job, so state stays running here.
		t.Logf("state = %v", j.Tasks[0].State)
	}
	if s.CompletedTasks() != 1 {
		t.Errorf("CompletedTasks = %d", s.CompletedTasks())
	}
}

func TestQueueingFIFO(t *testing.T) {
	eng, s := newTestServer(t, nil)
	// Saturate all 10 cores plus 3 queued tasks.
	var order []job.ID
	s.OnTaskDone(func(_ *Server, tk *job.Task) { order = append(order, tk.Job.ID) })
	for i := 0; i < 13; i++ {
		submitSingle(eng, s, job.ID(i), 0, 10*simtime.Millisecond)
	}
	eng.Run()
	if len(order) != 13 {
		t.Fatalf("completions = %d", len(order))
	}
	// Queued tasks (10, 11, 12) must finish after the first wave, in order.
	last3 := order[10:]
	if last3[0] != 10 || last3[1] != 11 || last3[2] != 12 {
		t.Errorf("queued completion order = %v", last3)
	}
}

func TestBusyCoresAndPending(t *testing.T) {
	eng, s := newTestServer(t, nil)
	for i := 0; i < 12; i++ {
		submitSingle(eng, s, job.ID(i), 0, 10*simtime.Millisecond)
	}
	eng.RunUntil(simtime.Millisecond)
	if s.BusyCores() != 10 {
		t.Errorf("BusyCores = %d, want 10", s.BusyCores())
	}
	if s.QueueLen() != 2 {
		t.Errorf("QueueLen = %d, want 2", s.QueueLen())
	}
	if s.PendingTasks() != 12 {
		t.Errorf("PendingTasks = %d, want 12", s.PendingTasks())
	}
	eng.Run()
	if s.PendingTasks() != 0 {
		t.Errorf("PendingTasks after drain = %d", s.PendingTasks())
	}
}

func TestIdleGovernorPromotion(t *testing.T) {
	eng, s := newTestServer(t, nil)
	// Fresh server: cores idle at t=0. Default thresholds: C1 at 0,
	// C3 at 100us, C6 at 1ms.
	eng.RunUntil(50 * simtime.Microsecond)
	if got := s.Core(0).CState(); got != power.C1 {
		t.Errorf("at 50us: %v, want C1", got)
	}
	eng.RunUntil(500 * simtime.Microsecond)
	if got := s.Core(0).CState(); got != power.C3 {
		t.Errorf("at 500us: %v, want C3", got)
	}
	eng.RunUntil(2 * simtime.Millisecond)
	if got := s.Core(0).CState(); got != power.C6 {
		t.Errorf("at 2ms: %v, want C6", got)
	}
	if s.PkgState() != power.PC6 {
		t.Errorf("package = %v, want PC6 once all cores are C6", s.PkgState())
	}
}

func TestWakeLatencyFromDeepSleep(t *testing.T) {
	eng, s := newTestServer(t, nil)
	prof := power.XeonE5_2680()
	var doneAt simtime.Time
	s.OnTaskDone(func(_ *Server, tk *job.Task) { doneAt = eng.Now() })
	// Let cores fall to C6 + PkgC6, then submit.
	submitSingle(eng, s, 1, 10*simtime.Millisecond, 5*simtime.Millisecond)
	eng.Run()
	wake := prof.WakeC6.Latency + prof.WakePC6.Latency
	want := 10*simtime.Millisecond + wake + 5*simtime.Millisecond
	if doneAt != want {
		t.Errorf("finished at %v, want %v (wake %v)", doneAt, want, wake)
	}
}

func TestDelayTimerEntersSleep(t *testing.T) {
	eng, s := newTestServer(t, func(c *Config) {
		c.DelayTimerEnabled = true
		c.DelayTimer = 100 * simtime.Millisecond
	})
	eng.RunUntil(99 * simtime.Millisecond)
	if s.SystemState() != power.S0 || s.EnteringSleep() {
		t.Errorf("slept before timer expiry: %v", s.SystemState())
	}
	// Timer expiry starts the suspend transition (3 s on this profile).
	eng.RunUntil(101 * simtime.Millisecond)
	if !s.EnteringSleep() {
		t.Error("suspend not started after timer expiry")
	}
	if !s.Asleep() {
		t.Error("Asleep() = false during suspend")
	}
	eng.RunUntil(3200 * simtime.Millisecond)
	if s.SystemState() != power.S3 {
		t.Errorf("state = %v, want S3 after suspend completes", s.SystemState())
	}
	if !s.Asleep() {
		t.Error("Asleep() = false")
	}
}

func TestDelayTimerCanceledByArrival(t *testing.T) {
	eng, s := newTestServer(t, func(c *Config) {
		c.DelayTimerEnabled = true
		c.DelayTimer = 100 * simtime.Millisecond
	})
	// Arrival at 50ms restarts the cycle: busy 10ms, then idle again.
	submitSingle(eng, s, 1, 50*simtime.Millisecond, 10*simtime.Millisecond)
	eng.RunUntil(140 * simtime.Millisecond)
	if s.SystemState() != power.S0 || s.EnteringSleep() {
		t.Error("slept too early; timer should restart after the task")
	}
	// Idle from ~60ms; suspend starts at ~160ms, S3 after the 3s entry.
	eng.RunUntil(170 * simtime.Millisecond)
	if !s.EnteringSleep() {
		t.Error("suspend not started after restarted timer")
	}
	eng.RunUntil(4 * simtime.Second)
	if s.SystemState() != power.S3 {
		t.Errorf("state = %v, want S3", s.SystemState())
	}
}

func TestSleepWakeRoundTrip(t *testing.T) {
	eng, s := newTestServer(t, func(c *Config) {
		c.DelayTimerEnabled = true
		c.DelayTimer = 10 * simtime.Millisecond
	})
	prof := power.XeonE5_2680()
	var doneAt simtime.Time
	s.OnTaskDone(func(_ *Server, tk *job.Task) { doneAt = eng.Now() })
	// Suspend starts at 10ms (3s entry). The 1s arrival lands mid-entry:
	// it must wait for entry to finish, then the full resume.
	submitSingle(eng, s, 1, simtime.Second, 5*simtime.Millisecond)
	eng.RunUntil(500 * simtime.Millisecond)
	if !s.EnteringSleep() {
		t.Fatalf("not suspending before arrival: %v", s.SystemState())
	}
	eng.Run()
	// entry completes at 10ms+3s, resume 1.5s, core C6 exit, 5ms task.
	want := 10*simtime.Millisecond + prof.SleepEntry.Latency +
		prof.WakeS3.Latency + prof.WakeC6.Latency + 5*simtime.Millisecond
	if doneAt != want {
		t.Errorf("finished at %v, want %v", doneAt, want)
	}
	if s.WakeCount() != 1 {
		t.Errorf("WakeCount = %d", s.WakeCount())
	}
	// With the delay timer still armed, the drained server re-suspends.
	if s.SystemState() != power.S3 {
		t.Errorf("state after drain = %v, want re-slept S3", s.SystemState())
	}
}

func TestResidencyLabels(t *testing.T) {
	eng, s := newTestServer(t, func(c *Config) {
		c.DelayTimerEnabled = true
		c.DelayTimer = 50 * simtime.Millisecond
	})
	submitSingle(eng, s, 1, 0, 20*simtime.Millisecond)
	end := 10 * simtime.Second
	eng.RunUntil(end)
	res := s.Residency()
	approx := func(got, want simtime.Time) bool {
		d := got - want
		if d < 0 {
			d = -d
		}
		return d <= 10*simtime.Microsecond // C1 exit offsets
	}
	active := res.DurationTo(StateActive, end)
	if !approx(active, 20*simtime.Millisecond) {
		t.Errorf("Active = %v, want ~20ms", active)
	}
	// Task until ~20ms, idle 50ms, suspend entry 3s (counted as
	// Wake-up), then S3 until 10s ≈ 6.93s.
	wake := res.DurationTo(StateWakeUp, end)
	if !approx(wake, 3*simtime.Second) {
		t.Errorf("Wake-up = %v, want ~3s (suspend entry)", wake)
	}
	sleep := res.DurationTo(StateSysSleep, end)
	if !approx(sleep, end-3070*simtime.Millisecond) {
		t.Errorf("SysSleep = %v, want ~%v", sleep, end-3070*simtime.Millisecond)
	}
	// Fractions sum to 1.
	sum := 0.0
	for _, f := range res.FractionsTo(end) {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum = %v", sum)
	}
}

func TestPowerLevels(t *testing.T) {
	prof := power.XeonE5_2680()
	eng, s := newTestServer(t, func(c *Config) {
		c.DelayTimerEnabled = true
		c.DelayTimer = 50 * simtime.Millisecond
	})
	// t=0: all cores idle in C0 (becomeIdle promotes to C1 at once
	// because IdleToC1 = 0, via a queued zero-delay event).
	idle0 := s.Power()
	if idle0 != prof.IdleWatts() {
		t.Errorf("initial power = %v, want IdleWatts %v", idle0, prof.IdleWatts())
	}
	// While running one task, power must exceed deep idle.
	submitSingle(eng, s, 1, simtime.Millisecond, 20*simtime.Millisecond)
	eng.RunUntil(10 * simtime.Millisecond)
	busy := s.Power()
	wantBusy := prof.CoreActive + 9*prof.CoreC6 + prof.PkgPC0 + prof.DRAMActive + prof.PlatformS0
	if math.Abs(busy-wantBusy) > 1e-9 {
		t.Errorf("busy power = %v, want %v", busy, wantBusy)
	}
	// During suspend entry the server draws the entry transition power.
	eng.RunUntil(200 * simtime.Millisecond)
	if got := s.Power(); math.Abs(got-prof.SleepEntry.Watts) > 1e-9 {
		t.Errorf("entry power = %v, want %v", got, prof.SleepEntry.Watts)
	}
	// Once in S3: sleep draw.
	eng.RunUntil(5 * simtime.Second)
	if got := s.Power(); math.Abs(got-prof.SleepWatts()) > 1e-9 {
		t.Errorf("sleep power = %v, want %v", got, prof.SleepWatts())
	}
}

func TestEnergyAccounting(t *testing.T) {
	eng, s := newTestServer(t, nil)
	end := simtime.Second
	eng.RunUntil(end)
	// Idle server for 1s: energy should be between deep-sleep-package
	// and Active-Idle levels, and components must sum.
	total := s.EnergyTo(end)
	parts := s.CPUEnergyTo(end) + s.DRAMEnergyTo(end) + s.PlatformEnergyTo(end)
	if math.Abs(total-parts) > 1e-9 {
		t.Errorf("component sum %v != total %v", parts, total)
	}
	prof := power.XeonE5_2680()
	min := (prof.SleepWatts()) * 1
	max := prof.IdleWatts() * 1
	if total < min || total > max {
		t.Errorf("idle energy %v J outside [%v, %v]", total, min, max)
	}
}

func TestPerCoreQueueMode(t *testing.T) {
	eng, s := newTestServer(t, func(c *Config) {
		c.QueueMode = QueuePerCore
	})
	count := 0
	s.OnTaskDone(func(_ *Server, tk *job.Task) { count++ })
	// 25 tasks over 10 cores: at least one core gets 3.
	for i := 0; i < 25; i++ {
		submitSingle(eng, s, job.ID(i), 0, 10*simtime.Millisecond)
	}
	eng.RunUntil(simtime.Millisecond)
	if s.BusyCores() != 10 {
		t.Errorf("BusyCores = %d", s.BusyCores())
	}
	if s.QueueLen() != 15 {
		t.Errorf("QueueLen = %d, want 15", s.QueueLen())
	}
	eng.Run()
	if count != 25 {
		t.Errorf("completions = %d", count)
	}
}

func TestHeterogeneousCores(t *testing.T) {
	speeds := []float64{2, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	eng, s := newTestServer(t, func(c *Config) {
		c.CoreSpeeds = speeds
	})
	var doneAt simtime.Time
	s.OnTaskDone(func(_ *Server, tk *job.Task) { doneAt = eng.Now() })
	// Single task must land on the fast core and take size/2 (plus the
	// C1 exit the zero-delay governor already applied).
	submitSingle(eng, s, 1, 0, 10*simtime.Millisecond)
	eng.Run()
	want := 5*simtime.Millisecond + power.XeonE5_2680().WakeC1.Latency
	if doneAt != want {
		t.Errorf("finished at %v, want %v on the 2x core", doneAt, want)
	}
	if s.Core(0).Completed() != 1 {
		t.Error("fast core did not serve the task")
	}
}

func TestDVFSSlowdown(t *testing.T) {
	eng, s := newTestServer(t, nil)
	if err := s.SetPState(3); err != nil { // P3: 0.55 speed
		t.Fatal(err)
	}
	var doneAt simtime.Time
	s.OnTaskDone(func(_ *Server, tk *job.Task) { doneAt = eng.Now() })
	submitSingle(eng, s, 1, 0, 11*simtime.Millisecond)
	eng.Run()
	want := simtime.FromSeconds(0.011/0.55) + power.XeonE5_2680().WakeC1.Latency
	if doneAt != want {
		t.Errorf("finished at %v, want %v", doneAt, want)
	}
	if err := s.SetPState(99); err == nil {
		t.Error("out-of-range P-state accepted")
	}
}

func TestForceSleepAndWakeUp(t *testing.T) {
	eng, s := newTestServer(t, nil)
	eng.RunUntil(simtime.Millisecond)
	if !s.ForceSleep() {
		t.Fatal("ForceSleep on idle server failed")
	}
	if !s.EnteringSleep() || !s.Asleep() {
		t.Fatal("suspend not started")
	}
	if s.ForceSleep() {
		t.Error("double ForceSleep succeeded")
	}
	eng.RunUntil(4 * simtime.Second)
	if s.SystemState() != power.S3 {
		t.Fatalf("state = %v, want S3", s.SystemState())
	}
	if !s.WakeUp() {
		t.Fatal("WakeUp failed")
	}
	if !s.Waking() {
		t.Error("not waking after WakeUp")
	}
	eng.Run()
	if s.SystemState() != power.S0 {
		t.Errorf("state after wake = %v", s.SystemState())
	}
	if s.WakeUp() {
		t.Error("WakeUp on awake server succeeded")
	}
}

func TestWakeUpDuringSuspendEntry(t *testing.T) {
	eng, s := newTestServer(t, nil)
	eng.RunUntil(simtime.Millisecond)
	if !s.ForceSleep() {
		t.Fatal("ForceSleep failed")
	}
	// Mid-entry wake request: honored once the suspend completes.
	if !s.WakeUp() {
		t.Error("WakeUp during suspend entry rejected")
	}
	eng.Run()
	if s.SystemState() != power.S0 {
		t.Errorf("state = %v, want S0 after entry+wake", s.SystemState())
	}
	if s.WakeCount() != 1 {
		t.Errorf("WakeCount = %d", s.WakeCount())
	}
}

func TestForceSleepRefusedWhenBusy(t *testing.T) {
	eng, s := newTestServer(t, nil)
	submitSingle(eng, s, 1, 0, 50*simtime.Millisecond)
	eng.RunUntil(10 * simtime.Millisecond)
	if s.ForceSleep() {
		t.Error("ForceSleep succeeded on busy server")
	}
}

func TestSetDelayTimerRuntime(t *testing.T) {
	eng, s := newTestServer(t, nil)
	eng.RunUntil(simtime.Millisecond)
	// Enable at runtime on an already-idle server: must arm immediately.
	s.SetDelayTimer(true, 10*simtime.Millisecond)
	eng.RunUntil(20 * simtime.Millisecond)
	if !s.EnteringSleep() {
		t.Error("suspend not started after runtime-enabled timer")
	}
	eng.RunUntil(5 * simtime.Second)
	if s.SystemState() != power.S3 {
		t.Errorf("state = %v, want S3", s.SystemState())
	}
	// Wake it and disable before the wake completes: it must stay awake.
	s.WakeUp()
	s.SetDelayTimer(false, 0)
	eng.Run()
	eng.RunUntil(simtime.Minute)
	if s.SystemState() != power.S0 {
		t.Errorf("state = %v, want S0 with timer disabled", s.SystemState())
	}
}

func TestSubmitWhileWakingQueues(t *testing.T) {
	eng, s := newTestServer(t, func(c *Config) {
		c.DelayTimerEnabled = true
		c.DelayTimer = 10 * simtime.Millisecond
	})
	count := 0
	s.OnTaskDone(func(_ *Server, tk *job.Task) { count++ })
	// Suspend entry starts at 10ms (3s). Two arrivals 1ms apart land
	// mid-entry; both ride the single coalesced wake.
	submitSingle(eng, s, 1, simtime.Second, 5*simtime.Millisecond)
	submitSingle(eng, s, 2, simtime.Second+simtime.Millisecond, 5*simtime.Millisecond)
	eng.Run()
	if count != 2 {
		t.Errorf("completions = %d", count)
	}
	if s.WakeCount() != 1 {
		t.Errorf("WakeCount = %d, want a single coalesced wake", s.WakeCount())
	}
}

func TestConfigValidation(t *testing.T) {
	eng := engine.New()
	if _, err := New(0, eng, Config{}); err == nil {
		t.Error("nil profile accepted")
	}
	cfg := DefaultConfig(power.XeonE5_2680())
	cfg.CoreSpeeds = []float64{1} // wrong length
	if _, err := New(0, eng, cfg); err == nil {
		t.Error("mismatched core speeds accepted")
	}
	cfg = DefaultConfig(power.XeonE5_2680())
	cfg.CoreSpeeds = make([]float64, 10)
	cfg.CoreSpeeds[3] = -1
	if _, err := New(0, eng, cfg); err == nil {
		t.Error("negative core speed accepted")
	}
	cfg = DefaultConfig(power.XeonE5_2680())
	cfg.DelayTimerEnabled = true
	cfg.DelayTimer = -simtime.Second
	if _, err := New(0, eng, cfg); err == nil {
		t.Error("negative delay timer accepted")
	}
}

func TestQueueModeString(t *testing.T) {
	if QueueUnified.String() != "unified" || QueuePerCore.String() != "per-core" {
		t.Error("QueueMode.String broken")
	}
	if QueueMode(9).String() != "QueueMode(9)" {
		t.Error("unknown mode formatting")
	}
	// Scenario-codec text forms round-trip; unknowns error.
	for _, m := range []QueueMode{QueueUnified, QueuePerCore} {
		b, err := m.MarshalText()
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		var back QueueMode = 99
		if err := back.UnmarshalText(b); err != nil || back != m {
			t.Errorf("round trip %v -> %q -> %v (%v)", m, b, back, err)
		}
	}
	if _, err := QueueMode(9).MarshalText(); err == nil {
		t.Error("unknown mode marshaled")
	}
	var m QueueMode
	if err := m.UnmarshalText([]byte("percore")); err == nil {
		t.Error("unknown name unmarshaled (text form is per-core)")
	}
}

// Property: every submitted task completes exactly once, regardless of
// arrival pattern, queue mode, and sleep policy.
func TestTaskConservationProperty(t *testing.T) {
	f := func(seed uint64, perCore bool, delayMs uint8) bool {
		eng := engine.New()
		cfg := DefaultConfig(power.XeonE5_2680())
		if perCore {
			cfg.QueueMode = QueuePerCore
		}
		cfg.DelayTimerEnabled = true
		cfg.DelayTimer = simtime.Time(delayMs) * simtime.Millisecond
		s, err := New(0, eng, cfg)
		if err != nil {
			return false
		}
		completions := make(map[job.ID]int)
		s.OnTaskDone(func(_ *Server, tk *job.Task) { completions[tk.Job.ID]++ })
		// Pseudo-random arrivals from the seed.
		x := seed
		at := simtime.Time(0)
		const n = 40
		for i := 0; i < n; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			at += simtime.Time(x%20) * simtime.Millisecond
			size := simtime.Time(1+x%10) * simtime.Millisecond
			submitSingle(eng, s, job.ID(i), at, size)
		}
		eng.Run()
		if len(completions) != n {
			return false
		}
		for _, c := range completions {
			if c != 1 {
				return false
			}
		}
		return s.PendingTasks() == 0 && s.BusyCores() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: energy components are nonnegative and total energy is
// monotone in time.
func TestEnergyMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		eng := engine.New()
		cfg := DefaultConfig(power.XeonE5_2680())
		cfg.DelayTimerEnabled = true
		cfg.DelayTimer = 20 * simtime.Millisecond
		s, err := New(0, eng, cfg)
		if err != nil {
			return false
		}
		x := seed
		at := simtime.Time(0)
		for i := 0; i < 20; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			at += simtime.Time(x%50) * simtime.Millisecond
			submitSingle(eng, s, job.ID(i), at, simtime.Time(1+x%8)*simtime.Millisecond)
		}
		prev := 0.0
		for end := 100 * simtime.Millisecond; end <= simtime.Second; end += 100 * simtime.Millisecond {
			eng.RunUntil(end)
			e := s.EnergyTo(end)
			if e < prev || s.CPUEnergyTo(end) < 0 || s.DRAMEnergyTo(end) < 0 {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
