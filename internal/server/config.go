// Package server implements HolDCSim's server architecture (paper
// Sec. III-A): multi-core (optionally heterogeneous) servers with local
// task queues, a local scheduler, and a hierarchical ACPI power
// controller spanning core C-states, package C-states and system sleep
// states, including the delay-timer mechanism of Sec. IV-B.
package server

import (
	"fmt"

	"holdcsim/internal/power"
	"holdcsim/internal/simtime"
)

// QueueMode selects the local queueing discipline (Sec. II cites Li et
// al. [37] on the performance impact of unified vs per-core queues).
type QueueMode int

// Local queue modes.
const (
	// QueueUnified buffers tasks in one FIFO; any core that frees up
	// pulls the head.
	QueueUnified QueueMode = iota
	// QueuePerCore assigns each task to a core queue on arrival
	// (shortest queue first) and cores serve only their own queue.
	QueuePerCore
)

// String implements fmt.Stringer.
func (m QueueMode) String() string {
	switch m {
	case QueueUnified:
		return "unified"
	case QueuePerCore:
		return "per-core"
	}
	return fmt.Sprintf("QueueMode(%d)", int(m))
}

// MarshalText implements encoding.TextMarshaler (scenario-file codec).
func (m QueueMode) MarshalText() ([]byte, error) {
	switch m {
	case QueueUnified, QueuePerCore:
		return []byte(m.String()), nil
	}
	return nil, fmt.Errorf("server: unknown queue mode %d", int(m))
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (m *QueueMode) UnmarshalText(b []byte) error {
	switch string(b) {
	case "unified":
		*m = QueueUnified
	case "per-core":
		*m = QueuePerCore
	default:
		return fmt.Errorf("server: unknown queue mode %q (want unified or per-core)", b)
	}
	return nil
}

// Config parameterizes one server instance.
type Config struct {
	// Profile supplies power figures and the core count. Required.
	Profile *power.ServerProfile

	// QueueMode selects the local scheduler's queueing discipline.
	QueueMode QueueMode

	// CoreSpeeds optionally gives per-core speed ratios for
	// heterogeneous processors (len must equal Profile.Cores).
	// Nil means all cores run at 1.0.
	CoreSpeeds []float64

	// Idle governor thresholds: time spent idle before a core is
	// promoted into the next deeper C-state. A negative value disables
	// that state. Zero promotes immediately.
	IdleToC1 simtime.Time
	IdleToC3 simtime.Time
	IdleToC6 simtime.Time

	// PkgC6Enabled allows the package to enter PC6 once every core is
	// in C6.
	PkgC6Enabled bool

	// DelayTimerEnabled arms a server-level delay timer: after the
	// server has been completely idle for DelayTimer, it enters
	// SleepState (Sec. IV-B). Zero DelayTimer sleeps immediately on
	// idle.
	DelayTimerEnabled bool
	DelayTimer        simtime.Time

	// SleepState is the target of the delay timer: S3 (suspend-to-RAM,
	// the paper's "system sleep") or S5 (off). Defaults to S3.
	SleepState power.SState

	// Kinds optionally restricts which task kinds this server is
	// configured to perform (Sec. III-C: "servers ... can be configured
	// to perform different tasks"). Empty means any. Enforced by the
	// global scheduler, carried here as the server's declared capability.
	Kinds []string
}

// DefaultConfig returns a config with the common idle governor (C1
// immediately, C3 after 100 µs, C6 after 1 ms), package C6 enabled, and
// no delay timer (Active-Idle behaviour at the system level).
func DefaultConfig(profile *power.ServerProfile) Config {
	return Config{
		Profile:      profile,
		QueueMode:    QueueUnified,
		IdleToC1:     0,
		IdleToC3:     100 * simtime.Microsecond,
		IdleToC6:     1 * simtime.Millisecond,
		PkgC6Enabled: true,
		SleepState:   power.S3,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Profile == nil {
		return fmt.Errorf("server: config needs a power profile")
	}
	if err := c.Profile.Validate(); err != nil {
		return err
	}
	if c.CoreSpeeds != nil && len(c.CoreSpeeds) != c.Profile.Cores {
		return fmt.Errorf("server: %d core speeds for %d cores",
			len(c.CoreSpeeds), c.Profile.Cores)
	}
	for i, s := range c.CoreSpeeds {
		if s <= 0 {
			return fmt.Errorf("server: core %d speed %g must be positive", i, s)
		}
	}
	if c.DelayTimerEnabled && c.DelayTimer < 0 {
		return fmt.Errorf("server: negative delay timer %v", c.DelayTimer)
	}
	if c.SleepState != power.S3 && c.SleepState != power.S5 && c.SleepState != power.S0 {
		return fmt.Errorf("server: invalid sleep state %v", c.SleepState)
	}
	return nil
}
