package server

import (
	"holdcsim/internal/engine"
	"holdcsim/internal/simtime"
)

// Farm groups the servers of one simulation and keeps their hot state in
// struct-of-arrays form so farm-wide questions never chase a pointer per
// server: a dense per-server pending-task array, running totals for
// pending and completed tasks (so Finalize and invariant scans read two
// int64s instead of walking N servers), and a shared sleep planner that
// replaces the one-engine-Timer-per-idle-server delay-timer scheme with a
// single timer over a deadline heap.
//
// A farm server in steady-state idle/sleep therefore costs O(1): no queued
// engine event (its suspend instant is a (deadline, seq) pair in the
// planner heap), no allocation, and no per-server work in deep scans.
type Farm struct {
	eng     *engine.Engine
	servers []*Server
	pending []int32 // per-server pending tasks (queued + reserved + running)

	totalPending   int64
	totalCompleted int64

	planner sleepPlanner
}

// NewFarm returns an empty farm bound to the engine. Servers are added
// with Add; the farm's sleep planner owns the single delay-timer event
// shared by all of them.
func NewFarm(eng *engine.Engine) *Farm {
	f := &Farm{eng: eng}
	f.planner.init(eng)
	return f
}

// Add constructs a server attached to this farm. Farm-attached servers
// route their sleep-state delay timers through the shared planner and
// mirror their pending-task counts into the farm's dense arrays.
func (f *Farm) Add(id int, cfg Config) (*Server, error) {
	s, err := newServer(id, f.eng, cfg, f, int32(len(f.servers)))
	if err != nil {
		return nil, err
	}
	f.servers = append(f.servers, s)
	f.pending = append(f.pending, int32(s.PendingTasks()))
	return s, nil
}

// Len reports the number of servers in the farm.
func (f *Farm) Len() int { return len(f.servers) }

// Server returns server i in add order.
func (f *Farm) Server(i int) *Server { return f.servers[i] }

// TotalPending reports the farm-wide sum of per-server pending tasks
// (queued + reserved + running), maintained incrementally — O(1), never a
// walk.
func (f *Farm) TotalPending() int64 { return f.totalPending }

// TotalCompleted reports the farm-wide completed-task count, maintained
// incrementally.
func (f *Farm) TotalCompleted() int64 { return f.totalCompleted }

// PendingOf reports server i's pending-task count from the dense array
// (no pointer chase; equals Server(i).PendingTasks()).
func (f *Farm) PendingOf(i int) int { return int(f.pending[i]) }

// SleepHeapLen reports the number of heap entries (live + stale) in the
// sleep planner — diagnostics for the O(1)-idle claim: it is bounded by
// arm churn, not by farm size, and an all-asleep farm holds zero queued
// engine events regardless of N.
func (f *Farm) SleepHeapLen() int { return len(f.planner.heap) }

// SleepTimerArmed reports whether the planner's single shared engine
// timer currently has a pending event.
func (f *Farm) SleepTimerArmed() bool { return f.planner.timer.Armed() }

// sleepEntry is one armed suspend deadline. seq is the global arm order:
// the heap pops in (at, seq) order, so servers whose deadlines coincide
// suspend in the order they armed — exactly the engine-seq order the old
// one-timer-per-server scheme produced, which keeps transition timestamps
// byte-identical (DESIGN.md Sec. 13).
type sleepEntry struct {
	at  simtime.Time
	seq uint64
	srv *Server
}

// sleepPlanner multiplexes every farm server's sleep-state delay timer
// onto one engine.Timer armed at the earliest pending deadline. Disarms
// are lazy: the entry stays in the heap and is recognized as stale when
// popped (the server's sleepSeq moved on), with periodic compaction so
// the heap never grows past ~2x the live entry count.
type sleepPlanner struct {
	eng   *engine.Engine
	timer *engine.Timer
	heap  []sleepEntry
	stale int    // entries whose server re-armed or disarmed since push
	seq   uint64 // arm counter; FIFO tie-break among equal deadlines

	armedAt  simtime.Time // deadline the shared timer is armed for
	timerSet bool
}

func (p *sleepPlanner) init(eng *engine.Engine) {
	p.eng = eng
	p.timer = engine.NewTimer(eng, p.fire)
}

// arm registers (or re-registers, moving the deadline like Timer.Reset)
// server s to suspend at instant at.
func (p *sleepPlanner) arm(s *Server, at simtime.Time) {
	if s.sleepArmed {
		p.stale++ // the previous entry's seq no longer matches: stale
	}
	p.seq++
	s.sleepArmed, s.sleepAt, s.sleepSeq = true, at, p.seq
	p.push(sleepEntry{at: at, seq: p.seq, srv: s})
	p.maybeCompact()
	if !p.timerSet || at < p.armedAt {
		p.armedAt, p.timerSet = at, true
		p.timer.Reset(at - p.eng.Now())
	}
}

// disarm cancels server s's pending suspend. The heap entry is left in
// place and skipped as stale when popped.
func (p *sleepPlanner) disarm(s *Server) {
	if !s.sleepArmed {
		return
	}
	s.sleepArmed = false
	p.stale++
	p.maybeCompact()
}

// fire pops every due live entry in (deadline, arm-seq) order and starts
// its server's suspend, then re-arms the shared timer at the next live
// deadline.
func (p *sleepPlanner) fire() {
	now := p.eng.Now()
	p.timerSet = false
	for len(p.heap) > 0 {
		e := p.heap[0]
		if !e.srv.sleepArmed || e.srv.sleepSeq != e.seq {
			p.pop()
			p.stale--
			continue
		}
		if e.at > now {
			p.armedAt, p.timerSet = e.at, true
			p.timer.Reset(e.at - now)
			return
		}
		p.pop()
		e.srv.sleepArmed = false
		e.srv.enterSleep()
	}
}

// maybeCompact rebuilds the heap without stale entries once they dominate
// (>64 and more than half), keeping memory proportional to live arms.
func (p *sleepPlanner) maybeCompact() {
	if p.stale <= 64 || p.stale*2 <= len(p.heap) {
		return
	}
	live := p.heap[:0]
	for _, e := range p.heap {
		if e.srv.sleepArmed && e.srv.sleepSeq == e.seq {
			live = append(live, e)
		}
	}
	p.heap = live
	p.stale = 0
	for i := len(p.heap)/2 - 1; i >= 0; i-- {
		p.siftDown(i)
	}
}

// less orders entries by (deadline, arm seq).
func (p *sleepPlanner) less(i, j int) bool {
	a, b := p.heap[i], p.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (p *sleepPlanner) push(e sleepEntry) {
	p.heap = append(p.heap, e)
	i := len(p.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !p.less(i, parent) {
			break
		}
		p.heap[i], p.heap[parent] = p.heap[parent], p.heap[i]
		i = parent
	}
}

func (p *sleepPlanner) pop() {
	n := len(p.heap) - 1
	p.heap[0] = p.heap[n]
	p.heap[n] = sleepEntry{} // release the *Server reference
	p.heap = p.heap[:n]
	if n > 0 {
		p.siftDown(0)
	}
}

func (p *sleepPlanner) siftDown(i int) {
	n := len(p.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && p.less(l, min) {
			min = l
		}
		if r < n && p.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		p.heap[i], p.heap[min] = p.heap[min], p.heap[i]
		i = min
	}
}
