package server

import (
	"testing"

	"holdcsim/internal/engine"
	"holdcsim/internal/job"
	"holdcsim/internal/power"
	"holdcsim/internal/simtime"
)

func BenchmarkSubmitComplete(b *testing.B) {
	eng := engine.New()
	s, err := New(0, eng, DefaultConfig(power.XeonE5_2680()))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := job.Single(job.ID(i), eng.Now(), simtime.Millisecond)
		s.Submit(j.Tasks[0])
		eng.Run()
	}
}

func BenchmarkSleepWakeCycle(b *testing.B) {
	eng := engine.New()
	cfg := DefaultConfig(power.FourCoreServer())
	cfg.DelayTimerEnabled = true
	cfg.DelayTimer = simtime.Millisecond
	s, err := New(0, eng, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Each iteration: idle -> suspend -> arrival mid/after entry ->
		// wake -> run -> idle.
		at := eng.Now() + 5*simtime.Second
		j := job.Single(job.ID(i), at, simtime.Millisecond)
		eng.Schedule(at, func() { s.Submit(j.Tasks[0]) })
		eng.Run()
	}
}
