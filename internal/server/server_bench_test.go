package server

import (
	"testing"

	"holdcsim/internal/engine"
	"holdcsim/internal/job"
	"holdcsim/internal/power"
	"holdcsim/internal/simtime"
)

func BenchmarkSubmitComplete(b *testing.B) {
	eng := engine.New()
	s, err := New(0, eng, DefaultConfig(power.XeonE5_2680()))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := job.Single(job.ID(i), eng.Now(), simtime.Millisecond)
		s.Submit(j.Tasks[0])
		eng.Run()
	}
}

func BenchmarkSleepWakeCycle(b *testing.B) {
	eng := engine.New()
	cfg := DefaultConfig(power.FourCoreServer())
	cfg.DelayTimerEnabled = true
	cfg.DelayTimer = simtime.Millisecond
	s, err := New(0, eng, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Each iteration: idle -> suspend -> arrival mid/after entry ->
		// wake -> run -> idle.
		at := eng.Now() + 5*simtime.Second
		j := job.Single(job.ID(i), at, simtime.Millisecond)
		eng.Schedule(at, func() { s.Submit(j.Tasks[0]) })
		eng.Run()
	}
}

// BenchmarkDelayTimerChurn is the dual-delay-timer hot path end to end:
// every Submit disarms the delay timer and every drain re-arms it, so one
// task per iteration exercises a full Stop/Reset cycle through the
// engine's event pool (Sec. IV-B churn; see DESIGN.md Sec. 4).
func BenchmarkDelayTimerChurn(b *testing.B) {
	eng := engine.New()
	cfg := DefaultConfig(power.XeonE5_2680())
	cfg.DelayTimerEnabled = true
	cfg.DelayTimer = simtime.Second // long enough to never actually sleep
	s, err := New(0, eng, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := job.Single(job.ID(i), eng.Now(), simtime.Microsecond)
		s.Submit(j.Tasks[0]) // disarms the delay timer
		eng.Run()            // task completes; server idles; timer re-arms
	}
}
