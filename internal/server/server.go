package server

import (
	"fmt"

	"holdcsim/internal/engine"
	"holdcsim/internal/job"
	"holdcsim/internal/modelcov"
	"holdcsim/internal/power"
	"holdcsim/internal/simtime"
	"holdcsim/internal/stats"
)

// Residency state labels, matching the paper's Fig. 8 legend. StateDown
// is the fault model's addition: a crashed server draws nothing and is
// billed to "Down" until it recovers.
const (
	StateActive   = "Active"
	StateWakeUp   = "Wake-up"
	StateIdle     = "Idle"
	StatePkgC6    = "PkgC6"
	StateSysSleep = "SysSleep"
	StateOff      = "Off"
	StateDown     = "Down"
)

// Server models one machine: a multi-core processor package, DRAM and
// platform components, a local task queue, a local scheduler, and a
// hierarchical power controller. All state changes run on the simulation
// engine's virtual clock.
type Server struct {
	id   int
	eng  *engine.Engine
	cfg  Config
	prof *power.ServerProfile

	cores     []*Core
	queue     []*job.Task // unified local queue
	busyCores int

	sstate         power.SState
	sockets        []power.PkgCState // per-socket package C-state
	waking         bool              // system-level S3/S5 -> S0 transition in flight
	entering       bool              // system suspend transition in flight
	wakeAfterEntry bool              // a wake was requested mid-suspend

	// failed marks a crashed server (fault model): it draws nothing,
	// accepts no work, and ignores every in-flight transition. epoch
	// increments on each Crash and Recover; transition completions
	// scheduled before a crash carry the epoch they were armed under and
	// become inert when it no longer matches.
	failed bool
	epoch  uint32

	// Sleep-state delay bookkeeping. A standalone server lazily creates a
	// private delayTimer on first arm; a farm-attached server instead
	// registers a (deadline, seq) pair with the farm's shared sleep
	// planner, so an idle server holds no queued engine event of its own.
	delayTimer *engine.Timer
	farm       *Farm
	fidx       int32
	sleepArmed bool
	sleepAt    simtime.Time
	sleepSeq   uint64

	// queueLen mirrors the queued + reserved task count (the sum QueueLen
	// used to recompute by walking every core) and is maintained at each
	// mutation; RecountQueueLen is the walking oracle the invariant
	// checker compares it against.
	queueLen int

	// Cached system-transition callbacks: suspend entry and wake each have
	// at most one completion in flight, so the armed epoch lives in a
	// field and the closures are allocated once — sleep cycles are
	// alloc-free.
	entryCB      func()
	entryEpoch   uint32
	sysWakeCB    func()
	sysWakeEpoch uint32

	onTaskDone []func(*Server, *job.Task)

	cpuMeter  *stats.EnergyMeter
	dramMeter *stats.EnergyMeter
	platMeter *stats.EnergyMeter
	residency *stats.Residency

	// cover, when non-nil, receives residency-transition features;
	// lastLabel is the previously recorded residency label so only
	// actual state changes are counted.
	cover     *modelcov.Map
	lastLabel string

	completedTasks int64
	wakeCount      int64 // system-level wakes, for diagnostics

	// onBusyChange, when set, observes busy-core count changes (the
	// DVFS governor's utilization signal).
	onBusyChange func(now simtime.Time, busy int)
}

// New constructs a standalone server bound to the engine. The server
// starts in S0 with all cores idle (governor engaged). Servers built in
// bulk should go through Farm.Add instead, which shares one sleep-planner
// timer across the population.
func New(id int, eng *engine.Engine, cfg Config) (*Server, error) {
	return newServer(id, eng, cfg, nil, 0)
}

func newServer(id int, eng *engine.Engine, cfg Config, farm *Farm, fidx int32) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SleepState == power.S0 {
		cfg.SleepState = power.S3
	}
	s := &Server{
		id:        id,
		eng:       eng,
		cfg:       cfg,
		prof:      cfg.Profile,
		farm:      farm,
		fidx:      fidx,
		sstate:    power.S0,
		sockets:   make([]power.PkgCState, cfg.Profile.SocketCount()),
		cpuMeter:  stats.NewEnergyMeter(fmt.Sprintf("server%d.cpu", id)),
		dramMeter: stats.NewEnergyMeter(fmt.Sprintf("server%d.dram", id)),
		platMeter: stats.NewEnergyMeter(fmt.Sprintf("server%d.platform", id)),
		residency: stats.NewResidency(fmt.Sprintf("server%d", id)),
	}
	s.cores = make([]*Core, s.prof.Cores)
	for i := range s.cores {
		speed := 1.0
		if cfg.CoreSpeeds != nil {
			speed = cfg.CoreSpeeds[i]
		}
		s.cores[i] = &Core{id: i, srv: s, speed: speed}
	}
	s.recompute()
	for _, c := range s.cores {
		c.becomeIdle()
	}
	s.checkServerIdle()
	return s, nil
}

// armSleep schedules enterSleep d from now, replacing any pending
// deadline (Timer.Reset semantics). Farm servers go through the shared
// planner; standalone servers lazily create their private timer — so a
// server whose profile never enables the delay timer allocates no timer
// at all.
func (s *Server) armSleep(d simtime.Time) {
	if s.farm != nil {
		s.farm.planner.arm(s, s.eng.Now()+d)
		return
	}
	if s.delayTimer == nil {
		s.delayTimer = engine.NewTimer(s.eng, func() { s.enterSleep() })
	}
	s.delayTimer.Reset(d)
}

// disarmSleep cancels any pending suspend. Cheap no-op when nothing is
// armed.
func (s *Server) disarmSleep() {
	if s.farm != nil {
		s.farm.planner.disarm(s)
		return
	}
	if s.delayTimer != nil {
		s.delayTimer.Stop()
	}
}

// queueDelta adjusts the maintained queued+reserved count and the farm's
// pending aggregates.
func (s *Server) queueDelta(d int) {
	s.queueLen += d
	if s.farm != nil {
		s.farm.pending[s.fidx] += int32(d)
		s.farm.totalPending += int64(d)
	}
}

// busyDelta adjusts the busy-core count and the farm's pending aggregates
// (pending = queued + reserved + running).
func (s *Server) busyDelta(d int) {
	s.busyCores += d
	if s.farm != nil {
		s.farm.pending[s.fidx] += int32(d)
		s.farm.totalPending += int64(d)
	}
}

// ID reports the server's identifier.
func (s *Server) ID() int { return s.id }

// Cores reports the number of cores.
func (s *Server) Cores() int { return len(s.cores) }

// Core returns core i (read-only inspection).
func (s *Server) Core(i int) *Core { return s.cores[i] }

// Kinds reports the task kinds this server is configured to perform
// (empty = any).
func (s *Server) Kinds() []string { return s.cfg.Kinds }

// Profile exposes the server's power profile (read-only; used for
// physics-bound checks and reporting).
func (s *Server) Profile() *power.ServerProfile { return s.prof }

// OnTaskDone subscribes a completion callback invoked when any task
// finishes on this server. The scheduler registers first (DAG and job
// bookkeeping); additional subscribers (traffic hooks, probes) run after
// it in registration order.
func (s *Server) OnTaskDone(fn func(*Server, *job.Task)) {
	s.onTaskDone = append(s.onTaskDone, fn)
}

// SystemState reports the ACPI system state.
func (s *Server) SystemState() power.SState { return s.sstate }

// PkgState reports the shallowest package C-state across sockets (PC6
// only when every socket is parked).
func (s *Server) PkgState() power.PkgCState {
	min := s.sockets[0]
	for _, st := range s.sockets[1:] {
		if st < min {
			min = st
		}
	}
	return min
}

// SocketStates reports each socket's package C-state.
func (s *Server) SocketStates() []power.PkgCState {
	out := make([]power.PkgCState, len(s.sockets))
	copy(out, s.sockets)
	return out
}

// socketOf reports which socket a core belongs to.
func (s *Server) socketOf(coreID int) int {
	return coreID / s.prof.CoresPerSocket()
}

// Waking reports whether a system-level wake transition is in flight.
func (s *Server) Waking() bool { return s.waking }

// EnteringSleep reports whether a system suspend transition is in
// flight.
func (s *Server) EnteringSleep() bool { return s.entering }

// Asleep reports whether the server is in (or suspending into) a system
// sleep state and not already waking.
func (s *Server) Asleep() bool {
	return (s.sstate != power.S0 || s.entering) && !s.waking
}

// BusyCores reports the number of cores currently executing tasks.
func (s *Server) BusyCores() int { return s.busyCores }

// QueueLen reports tasks buffered locally (all queues plus wake
// reservations, excluding running tasks). O(1): the count is maintained
// at every queue mutation rather than recomputed by walking cores.
func (s *Server) QueueLen() int { return s.queueLen }

// RecountQueueLen recomputes the buffered-task count from first
// principles by walking every queue — the invariant checker's oracle for
// the maintained QueueLen counter.
func (s *Server) RecountQueueLen() int {
	n := len(s.queue)
	for _, c := range s.cores {
		n += len(c.queue)
		if c.reserved != nil {
			n++
		}
	}
	return n
}

// PendingTasks reports the server's total in-flight load: queued,
// reserved and running tasks. Global schedulers use this as the load
// signal (Sec. IV-C's "pending jobs per server").
func (s *Server) PendingTasks() int { return s.QueueLen() + s.busyCores }

// CompletedTasks reports the number of tasks finished on this server.
func (s *Server) CompletedTasks() int64 { return s.completedTasks }

// WakeCount reports how many system-level wake transitions occurred.
func (s *Server) WakeCount() int64 { return s.wakeCount }

// Failed reports whether the server is crashed (fault model).
func (s *Server) Failed() bool { return s.failed }

// Crash fails the server (fault model): every running task's completion
// is canceled, all local state is discarded, the power draw drops to
// zero, and residency is billed to StateDown until Recover. It returns
// the orphaned tasks — running, reserved, and queued — in deterministic
// order (per-core running, then reserved, then per-core queues, then the
// unified queue) so the global scheduler can apply its drop/requeue
// policy. Crashing a failed server is a no-op returning nil.
func (s *Server) Crash() []*job.Task {
	if s.failed {
		return nil
	}
	s.failed = true
	s.epoch++
	s.disarmSleep()
	var orphans []*job.Task
	for _, c := range s.cores {
		if c.task != nil {
			s.eng.Cancel(c.finishEv)
			c.finishEv = engine.Handle{}
			orphans = append(orphans, c.task)
			c.task = nil
			c.busy = false
		}
	}
	for _, c := range s.cores {
		if c.reserved != nil {
			orphans = append(orphans, c.reserved)
			c.reserved = nil
		}
	}
	for _, c := range s.cores {
		orphans = append(orphans, c.queue...)
		c.queue = nil
		c.waking = false
		c.stopIdleTimer()
		c.cstate = power.C6
	}
	orphans = append(orphans, s.queue...)
	s.queue = nil
	s.queueDelta(-s.queueLen)
	s.busyDelta(-s.busyCores)
	s.waking, s.entering, s.wakeAfterEntry = false, false, false
	s.sstate = power.S0 // irrelevant while failed; Recover rebuilds
	for sk := range s.sockets {
		s.sockets[sk] = power.PC6
	}
	s.recompute()
	return orphans
}

// Recover boots a crashed server: it comes back in S0 with every core
// idle and the governor engaged, exactly as a freshly built server.
// Recovering a healthy server is a no-op.
func (s *Server) Recover() {
	if !s.failed {
		return
	}
	s.failed = false
	s.epoch++
	s.sstate = power.S0
	for sk := range s.sockets {
		s.sockets[sk] = power.PC0
	}
	for _, c := range s.cores {
		c.becomeIdle()
	}
	s.checkServerIdle()
}

// Abort retracts a task the scheduler previously submitted: it is
// removed from whichever queue holds it, or its execution is canceled
// mid-run (the core pulls its next task). It reports whether the task
// was found. Used by the fault model to kill sibling tasks of lost jobs
// on healthy servers.
func (s *Server) Abort(t *job.Task) bool {
	for i, q := range s.queue {
		if q == t {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.queueDelta(-1)
			return true
		}
	}
	for _, c := range s.cores {
		for i, q := range c.queue {
			if q == t {
				c.queue = append(c.queue[:i], c.queue[i+1:]...)
				s.queueDelta(-1)
				return true
			}
		}
		if c.reserved == t {
			// The core's wake is committed; it finds no reservation when
			// the transition completes and simply goes idle.
			c.reserved = nil
			s.queueDelta(-1)
			return true
		}
		if c.task == t {
			c.abortRun()
			return true
		}
	}
	return false
}

// Submit hands a task to the server's local scheduler. If the server is
// asleep (or suspending) it begins waking as soon as possible; the task
// waits in the local queue.
func (s *Server) Submit(t *job.Task) {
	if s.failed {
		panic("server: Submit to a failed server")
	}
	t.State = job.TaskQueued
	t.ServerID = s.id
	s.disarmSleep()
	if s.entering {
		// Suspend is committed; the wake starts when it completes.
		s.enqueue(t)
		s.wakeAfterEntry = true
		return
	}
	if s.sstate != power.S0 {
		s.enqueue(t)
		s.beginWake()
		return
	}
	if s.waking {
		s.enqueue(t)
		return
	}
	s.dispatch(t)
}

// dispatch places a task on a core or in the appropriate queue (server
// must be awake).
func (s *Server) dispatch(t *job.Task) {
	switch s.cfg.QueueMode {
	case QueuePerCore:
		// Shortest-queue assignment at arrival; capability-aware
		// tie-break prefers faster cores.
		best := -1
		bestLoad := 0
		for _, c := range s.cores {
			load := len(c.queue)
			if c.busy || c.waking || c.reserved != nil {
				load++
			}
			if best == -1 || load < bestLoad ||
				(load == bestLoad && c.speed > s.cores[best].speed) {
				best = c.id
				bestLoad = load
			}
		}
		c := s.cores[best]
		if c.available() {
			c.assign(t)
		} else {
			c.queue = append(c.queue, t)
			s.queueDelta(1)
		}
	default: // QueueUnified
		if c := s.pickIdleCore(); c != nil {
			c.assign(t)
		} else {
			s.queue = append(s.queue, t)
			s.queueDelta(1)
		}
	}
}

// pickIdleCore selects the best available core: fastest first (the local
// scheduler "can also consider the capability of the core", Sec. III-E),
// then shallowest C-state to minimize wake cost, then lowest id.
func (s *Server) pickIdleCore() *Core {
	var best *Core
	for _, c := range s.cores {
		if !c.available() {
			continue
		}
		if best == nil {
			best = c
			continue
		}
		if c.speed != best.speed {
			if c.speed > best.speed {
				best = c
			}
			continue
		}
		if c.cstate != best.cstate {
			if c.cstate < best.cstate {
				best = c
			}
			continue
		}
	}
	return best
}

// enqueue buffers a task while the server is asleep or waking.
func (s *Server) enqueue(t *job.Task) {
	s.queue = append(s.queue, t)
	s.queueDelta(1)
}

// coreFinished is called by a core when its task completes.
func (s *Server) coreFinished(c *Core, t *job.Task) {
	s.completedTasks++
	if s.farm != nil {
		s.farm.totalCompleted++
	}
	// Pull next work for this core before recomputing power so the
	// busy->busy path does not bounce through an idle sample.
	if next := s.nextFor(c); next != nil {
		c.run(next)
	} else {
		c.becomeIdle()
		s.checkServerIdle()
	}
	for _, fn := range s.onTaskDone {
		fn(s, t)
	}
}

// nextFor pops the next task for core c per the queue mode.
func (s *Server) nextFor(c *Core) *job.Task {
	if s.cfg.QueueMode == QueuePerCore {
		if len(c.queue) == 0 {
			return nil
		}
		t := c.queue[0]
		c.queue = c.queue[1:]
		s.queueDelta(-1)
		return t
	}
	if len(s.queue) == 0 {
		return nil
	}
	t := s.queue[0]
	s.queue = s.queue[1:]
	s.queueDelta(-1)
	return t
}

// checkServerIdle arms the delay timer when the server has gone
// completely idle (Sec. IV-B).
func (s *Server) checkServerIdle() {
	if !s.cfg.DelayTimerEnabled || s.failed {
		return
	}
	if s.sstate != power.S0 || s.waking || s.entering {
		return
	}
	if s.busyCores > 0 || s.queueLen > 0 {
		return
	}
	s.armSleep(s.cfg.DelayTimer)
}

// maybePkgC6 parks any socket whose cores have all reached C6.
func (s *Server) maybePkgC6() {
	if !s.cfg.PkgC6Enabled || s.sstate != power.S0 || s.entering || s.failed {
		return
	}
	perSocket := s.prof.CoresPerSocket()
	for sk := range s.sockets {
		if s.sockets[sk] == power.PC6 {
			continue
		}
		parked := true
		for _, c := range s.cores[sk*perSocket : (sk+1)*perSocket] {
			if c.cstate != power.C6 || c.busy || c.waking {
				parked = false
				break
			}
		}
		if parked {
			s.setSocketState(sk, power.PC6)
		}
	}
}

// setSocketState transitions one socket's package C-state.
func (s *Server) setSocketState(sk int, ps power.PkgCState) {
	if s.sockets[sk] == ps {
		return
	}
	s.sockets[sk] = ps
	s.recompute()
}

// enterSleep starts the suspend transition into the configured sleep
// state. The server must be idle; stale timer fires are ignored
// otherwise. The suspend is committed: a task arriving mid-entry waits
// until entry completes and the wake path runs.
func (s *Server) enterSleep() {
	if s.failed || s.sstate != power.S0 || s.waking || s.entering ||
		s.busyCores > 0 || s.queueLen > 0 {
		return
	}
	s.entering = true
	for _, c := range s.cores {
		c.park()
	}
	for sk := range s.sockets {
		s.sockets[sk] = power.PC6
	}
	s.recompute()
	s.entryEpoch = s.epoch
	if s.entryCB == nil {
		s.entryCB = s.sleepEntryDone
	}
	s.eng.After(s.prof.SleepEntry.Latency, s.entryCB)
}

// sleepEntryDone completes the suspend transition.
func (s *Server) sleepEntryDone() {
	if s.epoch != s.entryEpoch {
		return // the server crashed mid-suspend; the transition is void
	}
	s.entering = false
	s.sstate = s.cfg.SleepState
	s.recompute()
	if s.wakeAfterEntry || s.queueLen > 0 {
		s.wakeAfterEntry = false
		s.beginWake()
	}
}

// ForceSleep immediately starts the suspend transition if the server is
// idle, bypassing the delay timer (used by pool-based policies,
// Sec. IV-C). It reports whether the transition was initiated.
func (s *Server) ForceSleep() bool {
	if s.failed || s.sstate != power.S0 || s.waking || s.entering ||
		s.busyCores > 0 || s.queueLen > 0 {
		return false
	}
	s.disarmSleep()
	s.enterSleep()
	return true
}

// WakeUp proactively starts the system wake transition (used by adaptive
// policies to pre-warm a server before dispatching to it). It reports
// whether a wake was initiated, already in flight, or scheduled to
// follow an in-flight suspend.
func (s *Server) WakeUp() bool {
	if s.failed {
		return false
	}
	if s.entering {
		s.wakeAfterEntry = true
		return true
	}
	if s.sstate == power.S0 {
		return false
	}
	s.beginWake()
	return true
}

// beginWake starts the S3/S5 -> S0 transition if not already in flight.
func (s *Server) beginWake() {
	if s.waking || s.sstate == power.S0 {
		return
	}
	s.waking = true
	s.wakeCount++
	trans := s.prof.WakeS3
	if s.sstate == power.S5 {
		trans = s.prof.WakeS5
	}
	s.recompute()
	s.sysWakeEpoch = s.epoch
	if s.sysWakeCB == nil {
		s.sysWakeCB = s.sysWakeDone
	}
	s.eng.After(trans.Latency, s.sysWakeCB)
}

// sysWakeDone completes the system wake unless the server crashed while
// the transition was in flight.
func (s *Server) sysWakeDone() {
	if s.epoch != s.sysWakeEpoch {
		return
	}
	s.finishWake()
}

// finishWake completes the system wake: package powers up, queued work
// is drained onto cores (each paying its core-level C6 exit).
func (s *Server) finishWake() {
	s.waking = false
	s.sstate = power.S0
	for sk := range s.sockets {
		s.sockets[sk] = power.PC0
	}
	s.recompute()
	// Drain the backlog onto available cores. Each dispatch re-counts the
	// task if it lands back in a queue or reservation.
	pending := s.queue
	s.queue = nil
	s.queueDelta(-len(pending))
	for _, t := range pending {
		s.dispatch(t)
	}
	for _, c := range s.cores {
		if c.available() && c.cstate != power.C0 {
			// No work for this core: restart its idle accounting from
			// the parked state so it can re-enter PkgC6 later.
			c.armIdleStep()
		}
	}
	s.checkServerIdle()
	s.maybePkgC6()
}

// SetDelayTimer reconfigures the delay-timer policy at runtime (the dual
// delay-timer strategy of Sec. IV-B re-partitions τ values across the
// farm). Passing enabled=false cancels any armed timer.
func (s *Server) SetDelayTimer(enabled bool, d simtime.Time) {
	s.cfg.DelayTimerEnabled = enabled
	s.cfg.DelayTimer = d
	if !enabled {
		s.disarmSleep()
		return
	}
	s.checkServerIdle()
}

// SleepDeadline reports the instant the server will begin suspending and
// whether a suspend is pending — the lazily derived sleep instant: farm
// servers read their planner deadline field, standalone servers their
// private timer.
func (s *Server) SleepDeadline() (simtime.Time, bool) {
	if s.farm != nil {
		return s.sleepAt, s.sleepArmed
	}
	if s.delayTimer != nil && s.delayTimer.Armed() {
		return s.delayTimer.Deadline(), true
	}
	return 0, false
}

// DelayTimerConfig reports the current delay-timer setting.
func (s *Server) DelayTimerConfig() (enabled bool, d simtime.Time) {
	return s.cfg.DelayTimerEnabled, s.cfg.DelayTimer
}

// SetPState switches every core to P-state index i (DVFS). Tasks already
// running keep their start-time service estimate (the paper models DVFS
// per dispatch decision, not mid-task re-rating).
func (s *Server) SetPState(i int) error {
	if i < 0 || i >= len(s.prof.PStates) {
		return fmt.Errorf("server %d: P-state %d out of range", s.id, i)
	}
	for _, c := range s.cores {
		c.pstateIdx = i
	}
	s.recompute()
	return nil
}

// SetCorePState switches one core's P-state (Table I's per-core DVFS).
func (s *Server) SetCorePState(core, i int) error {
	if core < 0 || core >= len(s.cores) {
		return fmt.Errorf("server %d: core %d out of range", s.id, core)
	}
	if i < 0 || i >= len(s.prof.PStates) {
		return fmt.Errorf("server %d: P-state %d out of range", s.id, i)
	}
	s.cores[core].pstateIdx = i
	s.recompute()
	return nil
}

// GlobalState reports the server's ACPI global state (G0 working, G1
// sleeping, G2 soft-off).
func (s *Server) GlobalState() power.GState { return power.GlobalState(s.sstate) }

// recompute re-derives component power draws and the residency label
// after any state change.
func (s *Server) recompute() {
	now := s.eng.Now()
	var cpu, dram, plat float64
	var label string
	switch {
	case s.failed:
		// A crashed server draws nothing; its down time is billed to the
		// Down residency state and excluded from the energy envelope.
		label = StateDown
	case s.waking, s.entering:
		plat = s.prof.PlatformS0
		dram = s.prof.DRAMActive
		trans := s.prof.WakeS3
		if s.entering {
			trans = s.prof.SleepEntry
		} else if s.sstate == power.S5 {
			trans = s.prof.WakeS5
		}
		cpu = trans.Watts - plat - dram
		if min := s.prof.PkgPC0; cpu < min {
			cpu = min
		}
		label = StateWakeUp
	case s.sstate == power.S3:
		dram = s.prof.DRAMSelfRefresh
		plat = s.prof.PlatformS3
		label = StateSysSleep
	case s.sstate == power.S5:
		plat = s.prof.PlatformS5
		label = StateOff
	default: // S0
		anyCoreWaking := false
		for _, c := range s.cores {
			if c.waking {
				cpu += c.wakeTrans.Watts
				anyCoreWaking = true
				continue
			}
			cpu += s.prof.CoreWatts(c.cstate, c.busy, c.PState())
		}
		for _, st := range s.sockets {
			cpu += s.prof.PkgWatts(st)
		}
		if s.busyCores > 0 {
			dram = s.prof.DRAMActive
		} else {
			dram = s.prof.DRAMIdle
		}
		plat = s.prof.PlatformS0
		allParked := true
		for _, st := range s.sockets {
			if st != power.PC6 {
				allParked = false
				break
			}
		}
		switch {
		case s.busyCores > 0:
			label = StateActive
		case anyCoreWaking:
			label = StateWakeUp
		case allParked:
			label = StatePkgC6
		default:
			label = StateIdle
		}
	}
	s.cpuMeter.SetPower(now, cpu)
	s.dramMeter.SetPower(now, dram)
	s.platMeter.SetPower(now, plat)
	if s.cover != nil && label != s.lastLabel {
		s.cover.Hit(modelcov.SrvTransition(
			modelcov.SrvStateIndex(s.lastLabel), modelcov.SrvStateIndex(label)))
	}
	s.lastLabel = label
	s.residency.SetState(now, label)
	if s.onBusyChange != nil {
		s.onBusyChange(now, s.busyCores)
	}
}

// Power reports the server's current total draw in watts.
func (s *Server) Power() float64 {
	return s.cpuMeter.Power() + s.dramMeter.Power() + s.platMeter.Power()
}

// CPUPower reports the current processor (cores + package) draw.
func (s *Server) CPUPower() float64 { return s.cpuMeter.Power() }

// CPUEnergyTo reports processor energy in joules up to t.
func (s *Server) CPUEnergyTo(t simtime.Time) float64 { return s.cpuMeter.EnergyTo(t) }

// DRAMEnergyTo reports memory energy in joules up to t.
func (s *Server) DRAMEnergyTo(t simtime.Time) float64 { return s.dramMeter.EnergyTo(t) }

// PlatformEnergyTo reports platform energy in joules up to t.
func (s *Server) PlatformEnergyTo(t simtime.Time) float64 { return s.platMeter.EnergyTo(t) }

// EnergyTo reports total server energy in joules up to t.
func (s *Server) EnergyTo(t simtime.Time) float64 {
	return s.CPUEnergyTo(t) + s.DRAMEnergyTo(t) + s.PlatformEnergyTo(t)
}

// Residency exposes the state-residency tracker (Fig. 8).
func (s *Server) Residency() *stats.Residency { return s.residency }

// SetCover attaches a model-state coverage map: every residency label
// change from here on records a transition feature. Pass nil to
// detach. Coverage recording never alters simulation behavior.
func (s *Server) SetCover(m *modelcov.Map) { s.cover = m }
