//go:build !race

package server

import (
	"testing"

	"holdcsim/internal/engine"
	"holdcsim/internal/job"
	"holdcsim/internal/power"
	"holdcsim/internal/simtime"
)

// TestIdleFarmSteadyStateZeroAlloc is the CI gate for the hyperscale
// claim: a farm's idle/asleep population costs O(1) — zero queued engine
// events and zero allocations — while foreground work proceeds. The race
// detector inserts allocations, so this runs only in the non-race job.
func TestIdleFarmSteadyStateZeroAlloc(t *testing.T) {
	eng := engine.New()
	farm := NewFarm(eng)
	const n = 1024
	cfg := DefaultConfig(power.XeonE5_2680())
	cfg.DelayTimerEnabled = true
	cfg.DelayTimer = simtime.Millisecond
	for i := 0; i < n; i++ {
		if _, err := farm.Add(i, cfg); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run() // the whole farm promotes to C6/PC6 and suspends
	for i := 0; i < n; i++ {
		if !farm.Server(i).Asleep() {
			t.Fatalf("server %d not asleep", i)
		}
	}
	if got := eng.Len(); got != 0 {
		t.Fatalf("asleep farm holds %d queued events, want 0 (O(1) idle cost)", got)
	}

	// Foreground work on one server; the other 1023 asleep servers must
	// contribute no events and no allocations to its steady-state loop.
	hot := farm.Server(0)
	hot.SetDelayTimer(false, 0) // keep it awake between tasks
	jb := job.Single(1, 0, simtime.Millisecond)
	tk := jb.Tasks[0]
	cycle := func() {
		hot.Submit(tk)
		eng.Run()
	}
	for i := 0; i < 256; i++ { // first wake + ladder growth warmup
		cycle()
	}
	maxLive := 0
	probe := func() {
		hot.Submit(tk)
		for eng.Step() {
			if l := eng.Len(); l > maxLive {
				maxLive = l
			}
		}
	}
	probe()
	if maxLive > 4 {
		t.Fatalf("steady-state event population %d; want O(1), independent of the %d idle servers", maxLive, n)
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("steady-state cycle over an idle farm allocates %v per cycle, want 0", allocs)
	}
	for i := 1; i < n; i++ {
		if !farm.Server(i).Asleep() {
			t.Fatalf("idle server %d was disturbed by foreground work", i)
		}
	}
}
